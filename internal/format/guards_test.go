package format

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"concord/internal/diag"
	"concord/internal/lexer"
)

func TestLimitsValidate(t *testing.T) {
	if err := DefaultLimits().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Limits{
		{MaxFileSize: -1, MaxLineLen: 1, MaxDepth: 1, MaxLines: 1},
		{MaxFileSize: 1, MaxLineLen: 0, MaxDepth: 1, MaxLines: 1},
		{MaxFileSize: 1, MaxLineLen: 1, MaxDepth: -5, MaxLines: 1},
		{MaxFileSize: 1, MaxLineLen: 1, MaxDepth: 1, MaxLines: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, l)
		}
	}
}

func TestLimitsWithDefaults(t *testing.T) {
	got := Limits{MaxLineLen: 128}.WithDefaults()
	def := DefaultLimits()
	if got.MaxLineLen != 128 {
		t.Errorf("explicit value overridden: %+v", got)
	}
	if got.MaxFileSize != def.MaxFileSize || got.MaxDepth != def.MaxDepth || got.MaxLines != def.MaxLines {
		t.Errorf("zero fields not defaulted: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("defaulted limits invalid: %v", err)
	}
}

func TestCapLineRuneBoundary(t *testing.T) {
	g := newGuard("f", Limits{MaxLineLen: 5}.WithDefaults(), nil)
	g.lim.MaxLineLen = 5
	// "aaaé" is 5 bytes; cutting at byte 5 of "aaaéx" would split
	// nothing, but cutting "aaaax" at 4+é spans the boundary.
	in := "aaaéx" // é is 2 bytes: a a a 0xc3 0xa9 x
	out := g.capLine(in)
	if !utf8.ValidString(out) {
		t.Errorf("capLine produced invalid UTF-8: %q", out)
	}
	if len(out) > 5 {
		t.Errorf("capLine over limit: %d bytes", len(out))
	}
	if g.truncated != 1 {
		t.Errorf("truncated counter = %d", g.truncated)
	}
	// In-limit lines pass through untouched and uncounted.
	if got := g.capLine("ok"); got != "ok" || g.truncated != 1 {
		t.Errorf("capLine(ok) = %q, truncated = %d", got, g.truncated)
	}
}

func TestGuardFlushSummarizes(t *testing.T) {
	dc := diag.New()
	g := newGuard("f.cfg", DefaultLimits(), dc)
	g.truncated, g.capped, g.skipped = 3, 2, 1
	g.flush()
	ds := dc.All()
	if len(ds) != 3 {
		t.Fatalf("flush emitted %d diagnostics, want 3", len(ds))
	}
	for _, d := range ds {
		if d.Severity != diag.SevWarn || d.Source != "f.cfg" {
			t.Errorf("diagnostic = %+v", d)
		}
	}
	// Clean guards stay silent.
	dc2 := diag.New()
	newGuard("g.cfg", DefaultLimits(), dc2).flush()
	if dc2.Len() != 0 {
		t.Errorf("clean guard emitted %d diagnostics", dc2.Len())
	}
}

func TestLooksBinary(t *testing.T) {
	cases := []struct {
		name string
		text []byte
		want bool
	}{
		{"ascii", []byte("hostname r1\ninterface Ethernet1\n"), false},
		{"utf8", []byte("description café über\n"), false},
		{"empty", nil, false},
		{"nul", []byte("host\x00name"), true},
		{"mostly-invalid", bytes.Repeat([]byte{0xfe, 0xfd}, 100), true},
		{"sprinkled-latin1", append(bytes.Repeat([]byte("plain ascii line\n"), 20), 0xe9), false},
		{"nul-past-sample", append(bytes.Repeat([]byte("a"), binarySampleSize), 0x00), false},
	}
	for _, tc := range cases {
		if got := looksBinary(tc.text); got != tc.want {
			t.Errorf("%s: looksBinary = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestProcessOversizeSkips(t *testing.T) {
	dc := diag.New()
	lim := DefaultLimits()
	lim.MaxFileSize = 16
	cfg := Process("big.cfg", []byte(strings.Repeat("x y\n", 10)), nil,
		Options{Limits: lim, Diagnostics: dc})
	if !cfg.Skipped || len(cfg.Lines) != 0 {
		t.Errorf("oversize file not skipped: %+v", cfg)
	}
	ds := dc.All()
	if len(ds) != 1 || ds[0].Severity != diag.SevError ||
		!strings.Contains(ds[0].Message, "exceeds") {
		t.Errorf("diagnostics = %+v", ds)
	}
}

func TestProcessDepthCapJSON(t *testing.T) {
	dc := diag.New()
	lim := DefaultLimits()
	lim.MaxDepth = 8
	nested := strings.Repeat(`{"a":`, 200) + `1` + strings.Repeat(`}`, 200)
	cfg := Process("deep.json", []byte(nested), lexer.MustNew(),
		Options{Embed: true, Limits: lim, Diagnostics: dc})
	if cfg.Skipped {
		t.Fatal("deep JSON skipped entirely, want degraded processing")
	}
	var found bool
	for _, d := range dc.All() {
		if strings.Contains(d.Message, "depth capped") {
			found = true
		}
	}
	if !found {
		t.Errorf("no depth-cap diagnostic: %+v", dc.All())
	}
}
