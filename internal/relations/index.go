package relations

import (
	"concord/internal/netdata"
	"concord/internal/trie"
)

// Rel names a binary relation between the forall-side value (from line
// l1) and the exists-side witness value (from line l2). By convention
// the witness is the "larger" operand: contains(l2.b, l1.a) means l2's
// prefix contains l1's address, endswith(l2.b, l1.a) means l2's string
// ends with l1's string, matching the paper's rendering.
type Rel string

// The supported relations.
const (
	Equals     Rel = "equals"
	Contains   Rel = "contains"
	StartsWith Rel = "startswith"
	EndsWith   Rel = "endswith"
)

// Transitive reports whether chained contracts over this relation imply
// the transitive closure contract, making them eligible for minimization
// (§3.6).
func (r Rel) Transitive() bool {
	switch r {
	case Equals, StartsWith, EndsWith, Contains:
		return true
	}
	return false
}

// Holds evaluates the relation with lhs from the forall line and witness
// from the exists line.
func (r Rel) Holds(lhs, witness netdata.Value) bool {
	switch r {
	case Equals:
		return lhs.Key() == witness.Key()
	case Contains:
		p, ok := witness.(netdata.Prefix)
		if !ok {
			return false
		}
		switch l := lhs.(type) {
		case netdata.IP:
			return p.ContainsIP(l)
		case netdata.Prefix:
			return p.ContainsPrefix(l)
		}
		return false
	case StartsWith:
		a, b, ok := stringPair(lhs, witness)
		return ok && len(b) > len(a) && b[:len(a)] == a
	case EndsWith:
		a, b, ok := stringPair(lhs, witness)
		return ok && len(b) > len(a) && b[len(b)-len(a):] == a
	}
	return false
}

func stringPair(lhs, witness netdata.Value) (string, string, bool) {
	a, ok1 := lhs.(netdata.Str)
	b, ok2 := witness.(netdata.Str)
	if !ok1 || !ok2 {
		return "", "", false
	}
	return string(a), string(b), true
}

// Source identifies where a witness value came from: a pattern, the
// index of the parameter within that pattern, and the transform that
// produced the indexed value. Sources are the graph nodes of contract
// minimization.
type Source struct {
	Pattern   string
	ParamIdx  int
	Transform string
}

// valueIface is the value interface all relations operate on.
type valueIface = netdata.Value

// Entry pairs a witness value with its source.
type Entry struct {
	Source Source
	Value  netdata.Value
}

// Index is a relation-aware search structure: witness values are added
// once, and Query enumerates the entries whose stored value relates to
// the query value. Implementations replace the quadratic enumeration of
// candidate (pattern, pattern) pairs with per-value lookups.
type Index interface {
	// Rel identifies the relation this index answers.
	Rel() Rel
	// Add indexes one witness value with its source.
	Add(v netdata.Value, src Source)
	// Query visits every entry whose stored value relates to lhs (i.e.
	// Rel().Holds(lhs, entry.Value) is true). Visiting stops early when
	// visit returns false.
	Query(lhs netdata.Value, visit func(e Entry) bool)
}

// NewDefaultIndexes returns one index per supported relation.
func NewDefaultIndexes() []Index {
	return []Index{
		NewEqualityIndex(),
		NewContainsIndex(),
		NewAffixIndex(StartsWith),
		NewAffixIndex(EndsWith),
	}
}

// EqualityIndex finds equal values with a hash table keyed by canonical
// value keys.
type EqualityIndex struct {
	m map[string][]Entry
}

// NewEqualityIndex returns an empty equality index.
func NewEqualityIndex() *EqualityIndex {
	return &EqualityIndex{m: make(map[string][]Entry)}
}

// Rel implements Index.
func (ix *EqualityIndex) Rel() Rel { return Equals }

// Add implements Index.
func (ix *EqualityIndex) Add(v netdata.Value, src Source) {
	k := v.Key()
	ix.m[k] = append(ix.m[k], Entry{Source: src, Value: v})
}

// Query implements Index.
func (ix *EqualityIndex) Query(lhs netdata.Value, visit func(e Entry) bool) {
	for _, e := range ix.m[lhs.Key()] {
		if !visit(e) {
			return
		}
	}
}

// ContainsIndex finds containing prefixes with binary prefix tries, one
// per address family.
type ContainsIndex struct {
	v4 *trie.PrefixTrie[Entry]
	v6 *trie.PrefixTrie[Entry]
}

// NewContainsIndex returns an empty containment index.
func NewContainsIndex() *ContainsIndex {
	return &ContainsIndex{
		v4: trie.NewPrefixTrie[Entry](false),
		v6: trie.NewPrefixTrie[Entry](true),
	}
}

// Rel implements Index.
func (ix *ContainsIndex) Rel() Rel { return Contains }

// Add implements Index. Only prefix values are indexed; other kinds are
// ignored (they can never be containment witnesses).
func (ix *ContainsIndex) Add(v netdata.Value, src Source) {
	p, ok := v.(netdata.Prefix)
	if !ok {
		return
	}
	e := Entry{Source: src, Value: p}
	if p.Addr().Is6() {
		ix.v6.Insert(p, e)
	} else {
		ix.v4.Insert(p, e)
	}
}

// Query implements Index: for an IP it visits all containing prefixes;
// for a prefix it visits all subsuming prefixes.
func (ix *ContainsIndex) Query(lhs netdata.Value, visit func(e Entry) bool) {
	switch l := lhs.(type) {
	case netdata.IP:
		if l.Is6() {
			ix.v6.Containing(l, visit)
		} else {
			ix.v4.Containing(l, visit)
		}
	case netdata.Prefix:
		if l.Addr().Is6() {
			ix.v6.ContainingPrefix(l, visit)
		} else {
			ix.v4.ContainingPrefix(l, visit)
		}
	}
}

// AffixIndex finds strings extending the query string (startswith) or
// ending with it (endswith) using a string trie; endswith indexes
// reversed strings. Only string values participate, and matches are
// proper (a string is not its own affix) so that affix contracts stay
// disjoint from equality contracts.
type AffixIndex struct {
	rel Rel
	tr  *trie.StringTrie[Entry]
}

// NewAffixIndex returns an empty affix index for StartsWith or EndsWith.
func NewAffixIndex(rel Rel) *AffixIndex {
	return &AffixIndex{rel: rel, tr: trie.NewStringTrie[Entry]()}
}

// Rel implements Index.
func (ix *AffixIndex) Rel() Rel { return ix.rel }

// Add implements Index.
func (ix *AffixIndex) Add(v netdata.Value, src Source) {
	s, ok := v.(netdata.Str)
	if !ok {
		return
	}
	key := string(s)
	if ix.rel == EndsWith {
		key = trie.Reverse(key)
	}
	ix.tr.Insert(key, Entry{Source: src, Value: v})
}

// Query implements Index.
func (ix *AffixIndex) Query(lhs netdata.Value, visit func(e Entry) bool) {
	s, ok := lhs.(netdata.Str)
	if !ok {
		return
	}
	key := string(s)
	if ix.rel == EndsWith {
		key = trie.Reverse(key)
	}
	ix.tr.ExtensionsOf(key, true, visit)
}
