package relations

import (
	"fmt"
	"testing"

	"concord/internal/netdata"
)

func findTransform(t *testing.T, name string) Transform {
	t.Helper()
	for _, tr := range DefaultTransforms() {
		if tr.Name == name {
			return tr
		}
	}
	t.Fatalf("transform %q not found", name)
	return Transform{}
}

func TestHexTransform(t *testing.T) {
	tr := findTransform(t, "hex")
	v, ok := tr.Apply(netdata.NewNum(110))
	if !ok || v.Key() != "str:6e" {
		t.Errorf("hex(110) = %v, %v", v, ok)
	}
	if _, ok := tr.Apply(netdata.Str("x")); ok {
		t.Error("hex applied to a string")
	}
}

func TestStrTransform(t *testing.T) {
	tr := findTransform(t, "str")
	v, ok := tr.Apply(netdata.NewNum(251))
	if !ok || v.Key() != "str:251" {
		t.Errorf("str(251) = %v", v)
	}
	ip, _ := netdata.ParseIP4("10.0.0.1")
	v, ok = tr.Apply(ip)
	if !ok || v.Key() != "str:10.0.0.1" {
		t.Errorf("str(ip) = %v", v)
	}
	if _, ok := tr.Apply(netdata.Str("already")); ok {
		t.Error("str applied to a string")
	}
}

func TestOctetTransform(t *testing.T) {
	ip, _ := netdata.ParseIP4("10.14.99.34")
	tr := findTransform(t, "octet3")
	v, ok := tr.Apply(ip)
	if !ok || v.Key() != "num:99" {
		t.Errorf("octet3 = %v", v)
	}
	ip6, _ := netdata.ParseIP6("::1")
	if _, ok := tr.Apply(ip6); ok {
		t.Error("octet applied to IPv6")
	}
}

func TestSegmentTransform(t *testing.T) {
	m, _ := netdata.ParseMAC("00:00:0c:d3:00:6e")
	tr := findTransform(t, "segment6")
	v, ok := tr.Apply(m)
	if !ok || v.Key() != "str:6e" {
		t.Errorf("segment6 = %v", v)
	}
}

func TestApplyAll(t *testing.T) {
	// A number admits id, hex, and str.
	got := ApplyAll(DefaultTransforms(), netdata.NewNum(110))
	names := map[string]bool{}
	for _, a := range got {
		names[a.Transform] = true
	}
	for _, want := range []string{"id", "hex", "str"} {
		if !names[want] {
			t.Errorf("missing transform %q in %v", want, names)
		}
	}
	if names["octet1"] || names["segment1"] {
		t.Error("inapplicable transforms returned")
	}
	if got[0].Transform != "id" {
		t.Error("identity must come first")
	}
}

func TestRelHolds(t *testing.T) {
	ip, _ := netdata.ParseIP4("10.14.14.34")
	p32, _ := netdata.ParsePrefix4("10.14.14.34/32")
	p0, _ := netdata.ParsePrefix4("0.0.0.0/0")
	cases := []struct {
		rel     Rel
		lhs, w  netdata.Value
		want    bool
		comment string
	}{
		{Equals, netdata.NewNum(5), netdata.NewNum(5), true, "equal nums"},
		{Equals, netdata.NewNum(5), netdata.Str("5"), false, "kinds differ"},
		{Contains, ip, p32, true, "ip in /32"},
		{Contains, ip, p0, true, "ip in default"},
		{Contains, p32, p0, true, "prefix subsumption"},
		{Contains, p0, p32, false, "reverse subsumption"},
		{Contains, ip, netdata.NewNum(1), false, "witness not a prefix"},
		{StartsWith, netdata.Str("Neigh"), netdata.Str("Neighbor-1"), true, "proper prefix"},
		{StartsWith, netdata.Str("Neighbor-1"), netdata.Str("Neighbor-1"), false, "equality excluded"},
		{EndsWith, netdata.Str("251"), netdata.Str("10251"), true, "vlan/rd suffix"},
		{EndsWith, netdata.Str("251"), netdata.Str("252"), false, "no suffix"},
		{EndsWith, netdata.NewNum(251), netdata.Str("10251"), false, "lhs not a string"},
	}
	for _, c := range cases {
		if got := c.rel.Holds(c.lhs, c.w); got != c.want {
			t.Errorf("%s: %v.Holds(%v, %v) = %v, want %v", c.comment, c.rel, c.lhs, c.w, got, c.want)
		}
	}
}

func TestTransitive(t *testing.T) {
	for _, r := range []Rel{Equals, StartsWith, EndsWith, Contains} {
		if !r.Transitive() {
			t.Errorf("%v should be transitive", r)
		}
	}
	if Rel("bogus").Transitive() {
		t.Error("unknown relation marked transitive")
	}
}

func queryAll(ix Index, v netdata.Value) []Source {
	var out []Source
	ix.Query(v, func(e Entry) bool { out = append(out, e.Source); return true })
	return out
}

func TestEqualityIndex(t *testing.T) {
	ix := NewEqualityIndex()
	src := Source{Pattern: "vlan [num]", ParamIdx: 0, Transform: "id"}
	ix.Add(netdata.NewNum(251), src)
	got := queryAll(ix, netdata.NewNum(251))
	if len(got) != 1 || got[0] != src {
		t.Errorf("Query = %v", got)
	}
	if len(queryAll(ix, netdata.NewNum(252))) != 0 {
		t.Error("unexpected hit")
	}
	// Kind-disjoint: str "251" does not hit num 251.
	if len(queryAll(ix, netdata.Str("251"))) != 0 {
		t.Error("cross-kind equality hit")
	}
}

func TestContainsIndex(t *testing.T) {
	ix := NewContainsIndex()
	p, _ := netdata.ParsePrefix4("10.14.14.0/24")
	src := Source{Pattern: "seq [num] permit [pfx4]", ParamIdx: 1, Transform: "id"}
	ix.Add(p, src)
	ix.Add(netdata.NewNum(5), Source{}) // non-prefix ignored
	ip, _ := netdata.ParseIP4("10.14.14.34")
	got := queryAll(ix, ip)
	if len(got) != 1 || got[0] != src {
		t.Errorf("Query(ip) = %v", got)
	}
	outside, _ := netdata.ParseIP4("10.15.0.1")
	if len(queryAll(ix, outside)) != 0 {
		t.Error("address outside prefix matched")
	}
	sub, _ := netdata.ParsePrefix4("10.14.14.0/25")
	if len(queryAll(ix, sub)) != 1 {
		t.Error("prefix subsumption query failed")
	}
	if len(queryAll(ix, netdata.NewNum(1))) != 0 {
		t.Error("non-address query matched")
	}
}

func TestContainsIndexV6(t *testing.T) {
	ix := NewContainsIndex()
	p6, _ := netdata.ParsePrefix6("2001:db8::/32")
	ix.Add(p6, Source{Pattern: "p6"})
	ip6, _ := netdata.ParseIP6("2001:db8::1")
	if len(queryAll(ix, ip6)) != 1 {
		t.Error("v6 containment failed")
	}
	ip4, _ := netdata.ParseIP4("10.0.0.1")
	if len(queryAll(ix, ip4)) != 0 {
		t.Error("v4 query hit v6 trie")
	}
}

func TestAffixIndexes(t *testing.T) {
	sw := NewAffixIndex(StartsWith)
	ew := NewAffixIndex(EndsWith)
	src := Source{Pattern: "rd ...", ParamIdx: 1, Transform: "str"}
	sw.Add(netdata.Str("10251"), src)
	ew.Add(netdata.Str("10251"), src)

	// startswith: witness 10251 starts with 102.
	if got := queryAll(sw, netdata.Str("102")); len(got) != 1 {
		t.Errorf("startswith = %v", got)
	}
	// endswith: witness 10251 ends with 251 (the Figure 1 vlan contract).
	if got := queryAll(ew, netdata.Str("251")); len(got) != 1 {
		t.Errorf("endswith = %v", got)
	}
	// Proper: the string does not match itself.
	if got := queryAll(ew, netdata.Str("10251")); len(got) != 0 {
		t.Errorf("improper affix match = %v", got)
	}
	// Non-strings are ignored.
	sw.Add(netdata.NewNum(1), src)
	if got := queryAll(sw, netdata.NewNum(1)); len(got) != 0 {
		t.Errorf("non-string matched = %v", got)
	}
}

func TestNewDefaultIndexes(t *testing.T) {
	ixs := NewDefaultIndexes()
	rels := map[Rel]bool{}
	for _, ix := range ixs {
		rels[ix.Rel()] = true
	}
	for _, r := range []Rel{Equals, Contains, StartsWith, EndsWith} {
		if !rels[r] {
			t.Errorf("missing index for %v", r)
		}
	}
}

// TestIndexConsistentWithHolds: every source returned by an index Query
// must satisfy Rel.Holds for the value it indexed.
func TestIndexConsistentWithHolds(t *testing.T) {
	type pair struct {
		v   netdata.Value
		src Source
	}
	mk := func(ss ...string) []pair {
		var out []pair
		for i, s := range ss {
			out = append(out, pair{netdata.Str(s), Source{Pattern: s, ParamIdx: i}})
		}
		return out
	}
	pairs := mk("abc", "abcd", "xabc", "ab", "", "abc")
	sw := NewAffixIndex(StartsWith)
	ew := NewAffixIndex(EndsWith)
	stored := map[Source]netdata.Value{}
	for _, p := range pairs {
		sw.Add(p.v, p.src)
		ew.Add(p.v, p.src)
		stored[p.src] = p.v
	}
	for _, q := range pairs {
		for _, ix := range []Index{sw, ew} {
			ix.Query(q.v, func(e Entry) bool {
				if !ix.Rel().Holds(q.v, e.Value) {
					t.Errorf("%v.Query(%v) returned %v whose value %v does not hold",
						ix.Rel(), q.v, e.Source, e.Value)
				}
				return true
			})
		}
	}
}

func TestFuncIndex(t *testing.T) {
	within10 := func(lhs, w netdata.Value) bool {
		a, ok1 := lhs.(netdata.Num)
		b, ok2 := w.(netdata.Num)
		if !ok1 || !ok2 {
			return false
		}
		x, _ := a.Int64()
		y, _ := b.Int64()
		d := x - y
		if d < 0 {
			d = -d
		}
		return d != 0 && d <= 10
	}
	ix := NewFuncIndex("within10", within10)
	if ix.Rel() != "within10" {
		t.Error("Rel wrong")
	}
	ix.Add(netdata.NewNum(100), Source{Pattern: "p1"})
	ix.Add(netdata.NewNum(500), Source{Pattern: "p2"})
	got := queryAll(ix, netdata.NewNum(105))
	if len(got) != 1 || got[0].Pattern != "p1" {
		t.Errorf("Query = %v", got)
	}
	if len(queryAll(ix, netdata.NewNum(300))) != 0 {
		t.Error("unexpected match")
	}
}

func TestKeyedIndex(t *testing.T) {
	// /31-peer relation keyed by the shared upper 31 bits.
	key := func(v netdata.Value) (string, bool) {
		ip, ok := v.(netdata.IP)
		if !ok || ip.Is6() {
			return "", false
		}
		b := ip.Bytes()
		return fmt.Sprintf("%d.%d.%d.%d", b[0], b[1], b[2], b[3]>>1), true
	}
	verify := func(lhs, w netdata.Value) bool {
		a := lhs.(netdata.IP).Bytes()
		b := w.(netdata.IP).Bytes()
		return a[3]^b[3] == 1
	}
	ix := NewKeyedIndex("peer31", key, verify)
	a, _ := netdata.ParseIP4("10.0.0.2")
	b, _ := netdata.ParseIP4("10.0.0.3")
	c, _ := netdata.ParseIP4("10.0.0.4")
	ix.Add(a, Source{Pattern: "pa"})
	ix.Add(b, Source{Pattern: "pb"})
	ix.Add(c, Source{Pattern: "pc"})
	ix.Add(netdata.NewNum(1), Source{Pattern: "ignored"}) // non-IP excluded

	got := queryAll(ix, a)
	if len(got) != 1 || got[0].Pattern != "pb" {
		t.Errorf("peer of .2 = %v, want pb", got)
	}
	got = queryAll(ix, c)
	if len(got) != 0 {
		t.Errorf("peer of .4 = %v, want none (.5 absent)", got)
	}
}

func TestDefinitionValidate(t *testing.T) {
	holds := func(lhs, w netdata.Value) bool { return false }
	newIx := func() Index { return NewFuncIndex("x", holds) }
	good := Definition{Rel: "custom", Holds: holds, NewIndex: newIx}
	if err := good.Validate(); err != nil {
		t.Errorf("good definition rejected: %v", err)
	}
	for _, bad := range []Definition{
		{Rel: "", Holds: holds, NewIndex: newIx},
		{Rel: Equals, Holds: holds, NewIndex: newIx},
		{Rel: "x", NewIndex: newIx},
		{Rel: "x", Holds: holds},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid definition accepted: %+v", bad.Rel)
		}
	}
}
