// Package relations defines the value relations Concord learns between
// configuration lines (equals, contains, startswith, endswith), the data
// transformations that widen the relation space (identity, hex, string
// conversion, IP octets, MAC segments), and the relation-aware search
// indexes (§3.5) that make candidate generation scale: a hash table for
// equality, binary prefix tries for containment, and string tries for
// affix relations.
package relations

import (
	"fmt"

	"concord/internal/netdata"
)

// Transform is a named unary data transformation applied to a parameter
// value before relating it to another value. The identity transform is
// named "id" and applies to every kind.
type Transform struct {
	// Name identifies the transform in contracts, e.g. "hex", "octet3".
	Name string
	// Apply converts a value; ok=false means the transform does not
	// apply to this value.
	Apply func(netdata.Value) (netdata.Value, bool)
}

// Identity is the identity transform.
var Identity = Transform{
	Name:  "id",
	Apply: func(v netdata.Value) (netdata.Value, bool) { return v, true },
}

// DefaultTransforms returns the built-in transformation set, mirroring
// the paper's examples: hex() for the port-channel/MAC contract,
// segment(i) for MAC segments, octet(i) for IP octets, and str() for
// affix relations over rendered values.
func DefaultTransforms() []Transform {
	ts := []Transform{
		Identity,
		{
			Name: "hex",
			Apply: func(v netdata.Value) (netdata.Value, bool) {
				n, ok := v.(netdata.Num)
				if !ok {
					return nil, false
				}
				return netdata.Str(n.Hex()), true
			},
		},
		{
			Name: "str",
			Apply: func(v netdata.Value) (netdata.Value, bool) {
				switch v.(type) {
				case netdata.Num, netdata.Hex, netdata.IP, netdata.Bool:
					return netdata.Str(v.String()), true
				}
				return nil, false
			},
		},
	}
	for i := 1; i <= 4; i++ {
		i := i
		ts = append(ts, Transform{
			Name: fmt.Sprintf("octet%d", i),
			Apply: func(v netdata.Value) (netdata.Value, bool) {
				ip, ok := v.(netdata.IP)
				if !ok {
					return nil, false
				}
				o, ok := ip.Octet(i)
				if !ok {
					return nil, false
				}
				return netdata.NewNum(int64(o)), true
			},
		})
	}
	for i := 1; i <= 6; i++ {
		i := i
		ts = append(ts, Transform{
			Name: fmt.Sprintf("segment%d", i),
			Apply: func(v netdata.Value) (netdata.Value, bool) {
				m, ok := v.(netdata.MAC)
				if !ok {
					return nil, false
				}
				s, ok := m.Segment(i)
				if !ok {
					return nil, false
				}
				return netdata.Str(s), true
			},
		})
	}
	return ts
}

// ApplyAll returns every (transform, transformed value) pair that
// applies to v, identity first. The result order is deterministic.
func ApplyAll(ts []Transform, v netdata.Value) []Applied {
	var out []Applied
	for _, t := range ts {
		if tv, ok := t.Apply(v); ok {
			out = append(out, Applied{Transform: t.Name, Value: tv})
		}
	}
	return out
}

// Applied pairs a transform name with its result.
type Applied struct {
	Transform string
	Value     netdata.Value
}
