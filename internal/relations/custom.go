package relations

import "fmt"

// Definition describes a user-defined relation: how to evaluate it and
// how to index witness values for scalable candidate generation. This is
// the "simple interface" §4 of the paper describes for implementing new
// relationships — built-in relations (equals, contains, startswith,
// endswith) are hard-wired for speed, while custom relations plug in
// through mining options and checker construction.
type Definition struct {
	// Rel names the relation. It must not collide with a built-in name.
	Rel Rel
	// Holds evaluates the relation with lhs from the forall line and
	// witness from the exists line.
	Holds func(lhs, witness Value) bool
	// NewIndex builds an empty per-configuration witness index. The
	// miner adds every transformed parameter value and queries it with
	// every value; Query must visit exactly the entries whose stored
	// value satisfies Holds(lhs, stored).
	NewIndex func() Index
}

// Value aliases the value interface so custom definitions can be written
// without importing internal/netdata directly from user code (the root
// concord package re-exports both).
type Value = valueIface

// Validate checks a definition for use alongside the built-ins.
func (d *Definition) Validate() error {
	switch {
	case d.Rel == "":
		return fmt.Errorf("relations: custom relation needs a name")
	case d.Rel == Equals || d.Rel == Contains || d.Rel == StartsWith || d.Rel == EndsWith:
		return fmt.Errorf("relations: %q is a built-in relation", d.Rel)
	case d.Holds == nil:
		return fmt.Errorf("relations: custom relation %q needs a Holds func", d.Rel)
	case d.NewIndex == nil:
		return fmt.Errorf("relations: custom relation %q needs a NewIndex func", d.Rel)
	}
	return nil
}

// FuncIndex adapts a brute-force Holds function into an Index by linear
// scan — convenient for prototyping a custom relation before writing a
// real search structure. Query cost is O(inserted values), so use it
// only where witness sets stay small.
type FuncIndex struct {
	rel     Rel
	holds   func(lhs, witness Value) bool
	entries []Entry
}

// NewFuncIndex builds a linear-scan index for the given relation.
func NewFuncIndex(rel Rel, holds func(lhs, witness Value) bool) *FuncIndex {
	return &FuncIndex{rel: rel, holds: holds}
}

// Rel implements Index.
func (ix *FuncIndex) Rel() Rel { return ix.rel }

// Add implements Index.
func (ix *FuncIndex) Add(v Value, src Source) {
	ix.entries = append(ix.entries, Entry{Source: src, Value: v})
}

// Query implements Index.
func (ix *FuncIndex) Query(lhs Value, visit func(e Entry) bool) {
	for _, e := range ix.entries {
		if ix.holds(lhs, e.Value) {
			if !visit(e) {
				return
			}
		}
	}
}

// KeyedIndex indexes witness values under caller-derived hash keys, the
// scalable counterpart to FuncIndex for custom relations whose matches
// can be bucketed: Query visits entries whose stored value shares a key
// with the query value. Supply Verify when keys over-approximate the
// relation (entries failing Verify are skipped). A /31-peer relation,
// for example, keys both addresses of a link by their shared upper 31
// bits, making lookups O(1) instead of O(values).
type KeyedIndex struct {
	rel    Rel
	keyOf  func(v Value) (string, bool)
	verify func(lhs, witness Value) bool
	m      map[string][]Entry
}

// NewKeyedIndex builds a keyed index. keyOf returns the bucket key for a
// value (ok=false excludes the value); verify may be nil when bucket
// equality exactly characterizes the relation.
func NewKeyedIndex(rel Rel, keyOf func(v Value) (string, bool), verify func(lhs, witness Value) bool) *KeyedIndex {
	return &KeyedIndex{rel: rel, keyOf: keyOf, verify: verify, m: make(map[string][]Entry)}
}

// Rel implements Index.
func (ix *KeyedIndex) Rel() Rel { return ix.rel }

// Add implements Index.
func (ix *KeyedIndex) Add(v Value, src Source) {
	k, ok := ix.keyOf(v)
	if !ok {
		return
	}
	ix.m[k] = append(ix.m[k], Entry{Source: src, Value: v})
}

// Query implements Index.
func (ix *KeyedIndex) Query(lhs Value, visit func(e Entry) bool) {
	k, ok := ix.keyOf(lhs)
	if !ok {
		return
	}
	for _, e := range ix.m[k] {
		if ix.verify != nil && !ix.verify(lhs, e.Value) {
			continue
		}
		if !visit(e) {
			return
		}
	}
}
