package artifact_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/format"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/netdata"
)

func openCache(t *testing.T) *artifact.Cache {
	t.Helper()
	c, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheMissStoreLoad(t *testing.T) {
	c := openCache(t)
	key := artifact.HashBytes("test", []byte("hello"))
	if _, err := c.Load(artifact.KindLex, key); !errors.Is(err, artifact.ErrMiss) {
		t.Fatalf("Load on empty cache: got %v, want ErrMiss", err)
	}
	payload := []byte("some payload bytes")
	if err := c.Store(artifact.KindLex, key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(artifact.KindLex, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip: got %q, want %q", got, payload)
	}
	// Kinds are separate namespaces.
	if _, err := c.Load(artifact.KindCheck, key); !errors.Is(err, artifact.ErrMiss) {
		t.Fatalf("Load other kind: got %v, want ErrMiss", err)
	}
}

// entryPath finds the single on-disk entry file of a one-entry cache.
func entryPath(t *testing.T, c *artifact.Cache, kind artifact.Kind) string {
	t.Helper()
	var found string
	root := filepath.Join(c.Dir(), string(kind))
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			found = p
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err %v)", root, err)
	}
	return found
}

func TestCacheCorruptionDetected(t *testing.T) {
	key := artifact.HashBytes("test", []byte("x"))
	payload := []byte("payload worth protecting")
	corruptions := []struct {
		name   string
		mutate func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not an artifact at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version-mismatch", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[4] = 0xFF // schema version field
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			c := openCache(t)
			if err := c.Store(artifact.KindLex, key, payload); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, entryPath(t, c, artifact.KindLex))
			_, err := c.Load(artifact.KindLex, key)
			var ce *artifact.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Load after %s: got %v, want *CorruptError", tc.name, err)
			}
			// A Store overwrites the bad entry and recovers the key.
			if err := c.Store(artifact.KindLex, key, payload); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Load(artifact.KindLex, key); err != nil {
				t.Fatalf("Load after repair: %v", err)
			}
		})
	}
}

const sampleConfig = `hostname SW1
!
interface Loopback0
   ip address 10.14.3.34
   ipv6 address 2001:db8::1
!
interface Port-Channel12
   evpn ether-segment
      route-target import 00:00:0c:d3:00:0c
!
ip prefix-list loopback
   seq 10 permit 10.14.3.34/32
!
router bgp 65003
   router-id 0xCAFE
   vlan 243
`

func processSample(t *testing.T, interns *intern.Table) *lexer.Config {
	t.Helper()
	lx, err := lexer.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := format.Process("sw1.cfg", []byte(sampleConfig), lx,
		format.Options{Embed: true, Interns: interns})
	if cfg.Skipped {
		t.Fatal("sample config was skipped")
	}
	return &cfg
}

func TestConfigCodecRoundTrip(t *testing.T) {
	interns := intern.NewTable()
	cfg := processSample(t, interns)
	payload, ok := artifact.EncodeConfig(cfg)
	if !ok {
		t.Fatal("EncodeConfig: sample config should be encodable")
	}
	decTab := intern.NewTable()
	dec, err := artifact.DecodeConfig(payload, "renamed.cfg", decTab)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "renamed.cfg" {
		t.Fatalf("decoded name %q", dec.Name)
	}
	if dec.SourceLines != cfg.SourceLines {
		t.Fatalf("SourceLines: got %d, want %d", dec.SourceLines, cfg.SourceLines)
	}
	if len(dec.Lines) != len(cfg.Lines) {
		t.Fatalf("lines: got %d, want %d", len(dec.Lines), len(cfg.Lines))
	}
	for i := range cfg.Lines {
		want, got := &cfg.Lines[i], &dec.Lines[i]
		if got.File != "renamed.cfg" {
			t.Fatalf("line %d File %q", i, got.File)
		}
		if got.Num != want.Num || got.Raw != want.Raw || got.Text != want.Text ||
			got.Pattern != want.Pattern || got.Display != want.Display {
			t.Fatalf("line %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		if got.PatternID != decTab.ID(want.Pattern) {
			t.Fatalf("line %d PatternID %d not interned in decode table", i, got.PatternID)
		}
		if len(got.Params) != len(want.Params) {
			t.Fatalf("line %d params: got %d, want %d", i, len(got.Params), len(want.Params))
		}
		for pi := range want.Params {
			wp, gp := &want.Params[pi], &got.Params[pi]
			if gp.Name != wp.Name || gp.Type != wp.Type {
				t.Fatalf("line %d param %d: got %s/%s, want %s/%s", i, pi, gp.Name, gp.Type, wp.Name, wp.Type)
			}
			if gp.Value.Kind() != wp.Value.Kind() || gp.Value.Key() != wp.Value.Key() ||
				gp.Value.String() != wp.Value.String() {
				t.Fatalf("line %d param %d value: got %s %q, want %s %q",
					i, pi, gp.Value.Kind(), gp.Value.String(), wp.Value.Kind(), wp.Value.String())
			}
		}
	}
}

func TestDecodeConfigRejectsCorruptPayload(t *testing.T) {
	cfg := processSample(t, intern.NewTable())
	payload, ok := artifact.EncodeConfig(cfg)
	if !ok {
		t.Fatal("sample should encode")
	}
	for cut := 1; cut < len(payload); cut += len(payload) / 17 {
		if _, err := artifact.DecodeConfig(payload[:cut], "x.cfg", nil); err == nil {
			t.Fatalf("DecodeConfig accepted a payload truncated at %d/%d", cut, len(payload))
		}
	}
	if _, err := artifact.DecodeConfig(append(payload[:len(payload):len(payload)], 0xAB), "x.cfg", nil); err == nil {
		t.Fatal("DecodeConfig accepted trailing bytes")
	}
}

// opaqueVal is a custom netdata.Value the decoder cannot reconstruct.
type opaqueVal struct{}

func (opaqueVal) Kind() netdata.Kind { return netdata.KindString }
func (opaqueVal) Key() string        { return "opaque:x" }
func (opaqueVal) String() string     { return "x" }

func TestEncodeConfigRejectsNonRoundTrippable(t *testing.T) {
	meta := &lexer.Config{Lines: []lexer.Line{{Meta: true, Pattern: "@meta/x"}}}
	if _, ok := artifact.EncodeConfig(meta); ok {
		t.Fatal("EncodeConfig accepted a config with metadata lines")
	}
	custom := &lexer.Config{Lines: []lexer.Line{{
		Pattern: "x [a:str]",
		Params:  []lexer.Param{{Name: "a", Type: "str", Value: opaqueVal{}}},
	}}}
	if _, ok := artifact.EncodeConfig(custom); ok {
		t.Fatal("EncodeConfig accepted a custom value implementation")
	}
}

func TestCheckEntryCodecRoundTrip(t *testing.T) {
	entry := &artifact.CheckEntry{
		Violations: []contracts.Violation{
			{Category: contracts.CatPresent, ContractID: "p1", Contract: "present x", File: "a.cfg", Detail: "missing"},
			{Category: contracts.CatType, ContractID: "t9", Contract: "type y", File: "a.cfg", Line: 12, Detail: "bad type"},
		},
		SourceLines: 40,
		Covered:     33,
		ByCategory: map[contracts.Category]int{
			contracts.CatPresent: 20,
			contracts.CatUnique:  0,
		},
		Unique: map[string][]contracts.UniqueSite{
			"u1": {{Key: "num:7", Display: "7", Line: 3}, {Key: "num:9", Display: "9", Line: 8}},
			"u2": {},
		},
	}
	payload := artifact.EncodeCheckEntry(entry)
	dec, err := artifact.DecodeCheckEntry(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Violations, entry.Violations) {
		t.Fatalf("violations:\n got %+v\nwant %+v", dec.Violations, entry.Violations)
	}
	if dec.SourceLines != entry.SourceLines || dec.Covered != entry.Covered {
		t.Fatalf("counts: got %d/%d, want %d/%d", dec.SourceLines, dec.Covered, entry.SourceLines, entry.Covered)
	}
	if !reflect.DeepEqual(dec.ByCategory, entry.ByCategory) {
		t.Fatalf("by-category: got %v, want %v", dec.ByCategory, entry.ByCategory)
	}
	if len(dec.Unique) != len(entry.Unique) || !reflect.DeepEqual(dec.Unique["u1"], entry.Unique["u1"]) {
		t.Fatalf("unique: got %v, want %v", dec.Unique, entry.Unique)
	}
	// Determinism: two encodings of the same entry are byte-identical.
	if string(payload) != string(artifact.EncodeCheckEntry(entry)) {
		t.Fatal("EncodeCheckEntry is not deterministic")
	}
	for cut := 1; cut < len(payload); cut += 5 {
		if _, err := artifact.DecodeCheckEntry(payload[:cut]); err == nil {
			t.Fatalf("DecodeCheckEntry accepted truncation at %d/%d", cut, len(payload))
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	c := openCache(t)
	if _, err := c.ReadManifest(); !errors.Is(err, artifact.ErrMiss) {
		t.Fatalf("ReadManifest on empty cache: got %v, want ErrMiss", err)
	}
	m := &artifact.Manifest{
		Schema:     artifact.SchemaVersion,
		OptionsFP:  "aa11",
		ContractFP: "bb22",
		Configs: []artifact.ManifestEntry{
			{Name: "a.cfg", ContentHash: "cc33", LexHit: true, CheckHit: true},
			{Name: "b.cfg", ContentHash: "dd44"},
		},
	}
	if err := c.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest round-trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestHasherFieldBoundaries(t *testing.T) {
	a := artifact.NewHasher("d").Str("ab").Str("c").Sum()
	b := artifact.NewHasher("d").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("adjacent fields alias")
	}
	if artifact.NewHasher("d1").Str("x").Sum() == artifact.NewHasher("d2").Str("x").Sum() {
		t.Fatal("domains collide")
	}
}
