package artifact

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

var frameMagic = [4]byte{'T', 'E', 'S', 'T'}

// TestFrameStreamRoundTrip writes several frames back to back and
// reads them off the same stream; the stream must end with a clean
// io.EOF, never a FrameError.
func TestFrameStreamRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("first"),
		{}, // empty payload is a valid frame
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, frameMagic, 3, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf, frameMagic, 3, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: payload %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf, frameMagic, 3, 1<<20); err != io.EOF {
		t.Errorf("drained stream = %v, want io.EOF", err)
	}
}

// TestReadFrameDefects: every defect mid-stream is a *FrameError —
// only a clean boundary before the first header byte is io.EOF.
func TestReadFrameDefects(t *testing.T) {
	frame := EncodeFrame(frameMagic, 3, []byte("payload"))
	cases := map[string][]byte{
		"torn header":     frame[:7],
		"torn payload":    frame[:len(frame)-3],
		"wrong magic":     EncodeFrame([4]byte{'N', 'O', 'P', 'E'}, 3, []byte("payload")),
		"schema skew":     EncodeFrame(frameMagic, 4, []byte("payload")),
		"checksum damage": append(append([]byte(nil), frame[:len(frame)-1]...), frame[len(frame)-1]^0x01),
	}
	for name, data := range cases {
		var fe *FrameError
		if _, err := ReadFrame(bytes.NewReader(data), frameMagic, 3, 1<<20); !errors.As(err, &fe) {
			t.Errorf("%s: err = %v, want *FrameError", name, err)
		}
	}
	if _, err := ReadFrame(bytes.NewReader(frame), frameMagic, 3, 3); err == nil {
		t.Error("oversized payload accepted despite maxPayload")
	}
}
