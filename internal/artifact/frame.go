package artifact

// The frame is the artifact cache's on-disk corruption barrier: a
// fixed-width header — magic, schema version, payload length, FNV-1a
// payload checksum — in front of every entry, so truncation, torn
// writes, bit flips, and version skew are all caught before a byte of
// payload is parsed. The bundle store (internal/bundle) shares the same
// discipline under its own magic values, which is why the encoder and
// decoder are exported here rather than private to the cache.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// FrameError reports a frame that cannot be trusted: wrong magic,
// mismatched schema version, truncated payload, or checksum failure.
// Callers wanting path context should wrap it (the cache wraps it into
// *CorruptError).
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "invalid frame: " + e.Reason }

// EncodeFrame prefixes payload with the corruption-detection header
// under the given magic and schema version.
func EncodeFrame(magic [4]byte, schema uint32, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], schema)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[16:24], checksum(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// DecodeFrame validates data's header against the expected magic and
// schema version and returns the payload, or a *FrameError describing
// why the frame cannot be trusted.
func DecodeFrame(magic [4]byte, schema uint32, data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, &FrameError{Reason: fmt.Sprintf("truncated header (%d bytes)", len(data))}
	}
	if [4]byte(data[:4]) != magic {
		return nil, &FrameError{Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != schema {
		return nil, &FrameError{Reason: fmt.Sprintf("schema version %d, want %d", v, schema)}
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, &FrameError{Reason: fmt.Sprintf("payload length %d, header says %d", len(payload), n)}
	}
	if sum := binary.LittleEndian.Uint64(data[16:24]); sum != checksum(payload) {
		return nil, &FrameError{Reason: "checksum mismatch"}
	}
	return payload, nil
}

// WriteFrame writes one framed payload to w. It is the streaming
// counterpart of EncodeFrame, used where frames travel over a pipe or
// socket instead of sitting whole in a file (the shard-worker wire
// protocol in internal/shardrpc).
func WriteFrame(w io.Writer, magic [4]byte, schema uint32, payload []byte) error {
	_, err := w.Write(EncodeFrame(magic, schema, payload))
	return err
}

// ReadFrame reads and validates exactly one frame from r. A clean EOF
// before any header byte is returned as io.EOF so stream consumers can
// distinguish an orderly close from truncation; every other defect —
// torn header, wrong magic, schema skew, oversized or truncated
// payload, checksum failure — is a *FrameError. maxPayload bounds the
// allocation a hostile or corrupt length field can demand.
func ReadFrame(r io.Reader, magic [4]byte, schema uint32, maxPayload uint64) ([]byte, error) {
	header := make([]byte, headerSize)
	if n, err := io.ReadFull(r, header); err != nil {
		if n == 0 && err == io.EOF {
			return nil, io.EOF
		}
		return nil, &FrameError{Reason: fmt.Sprintf("truncated header (%d bytes): %v", n, err)}
	}
	if [4]byte(header[:4]) != magic {
		return nil, &FrameError{Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != schema {
		return nil, &FrameError{Reason: fmt.Sprintf("schema version %d, want %d", v, schema)}
	}
	n := binary.LittleEndian.Uint64(header[8:16])
	if n > maxPayload {
		return nil, &FrameError{Reason: fmt.Sprintf("payload length %d exceeds limit %d", n, maxPayload)}
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, &FrameError{Reason: fmt.Sprintf("truncated payload (%d of %d bytes): %v", m, n, err)}
	}
	if sum := binary.LittleEndian.Uint64(header[16:24]); sum != checksum(payload) {
		return nil, &FrameError{Reason: "checksum mismatch"}
	}
	return payload, nil
}

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}
