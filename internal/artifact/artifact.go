// Package artifact implements Concord's content-addressed on-disk
// cache for warm runs. It persists two artifact kinds: lexed
// configurations (the expensive format-inference + lexing output of
// one source file, in a compact binary encoding) and per-configuration
// check results (violations, coverage counts, and unique-contract
// value multisets). Artifacts are addressed purely by content: the key
// of a lex artifact hashes the raw config bytes together with a
// fingerprint of every option that affects processing, and the key of
// a check artifact additionally folds in a fingerprint of the contract
// set and the metadata corpus. A cache hit therefore never needs a
// freshness check, and any input or option change misses naturally.
//
// Every entry is versioned and checksummed. A corrupt, truncated, or
// version-mismatched entry is reported as a *CorruptError so callers
// can fall back to the cold path with a diagnostic — the cache can
// degrade a run's speed, never its results.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaVersion is the on-disk encoding version. Entries written under
// a different version live in a different directory namespace and are
// simply never read; a tampered version field inside an entry is
// caught by the header check and reported as corruption.
const SchemaVersion = 1

// Key is a 256-bit content-address: the hash of an artifact's inputs.
type Key [sha256.Size]byte

// Hex renders the key as lowercase hexadecimal.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// ParseHex sets the key from its Hex rendering; the string must be
// exactly 64 hexadecimal digits.
func (k *Key) ParseHex(s string) error {
	b, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("artifact: bad key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return fmt.Errorf("artifact: bad key %q: want %d hex digits, got %d", s, 2*len(k), len(s))
	}
	copy(k[:], b)
	return nil
}

// IsZero reports whether the key is the zero value (no key computed).
func (k Key) IsZero() bool { return k == Key{} }

// Kind names an artifact class; each kind has its own directory.
type Kind string

// The artifact kinds.
const (
	// KindLex holds binary-encoded lexer.Config artifacts.
	KindLex Kind = "lex"
	// KindCheck holds per-configuration check-result artifacts.
	KindCheck Kind = "check"
)

// Hasher accumulates length-prefixed fields into a key, so that
// adjacent fields can never alias ("ab","c" vs "a","bc") and distinct
// domains can never collide.
type Hasher struct {
	h   [32]byte
	buf []byte
}

// NewHasher starts a hasher whose first field is the domain label.
func NewHasher(domain string) *Hasher {
	h := &Hasher{}
	h.Str(domain)
	return h
}

// Bytes appends one length-prefixed byte field.
func (h *Hasher) Bytes(b []byte) *Hasher {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	h.buf = append(h.buf, n[:]...)
	h.buf = append(h.buf, b...)
	return h
}

// Str appends one length-prefixed string field.
func (h *Hasher) Str(s string) *Hasher { return h.Bytes([]byte(s)) }

// Int appends one integer field.
func (h *Hasher) Int(i int) *Hasher {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(i))
	return h.Bytes(n[:])
}

// Bool appends one boolean field.
func (h *Hasher) Bool(b bool) *Hasher {
	if b {
		return h.Bytes([]byte{1})
	}
	return h.Bytes([]byte{0})
}

// Key appends a previously computed key as a field.
func (h *Hasher) Key(k Key) *Hasher { return h.Bytes(k[:]) }

// Sum returns the accumulated key.
func (h *Hasher) Sum() Key { return sha256.Sum256(h.buf) }

// HashBytes hashes one byte slice under a domain label.
func HashBytes(domain string, b []byte) Key {
	return NewHasher(domain).Bytes(b).Sum()
}

// ErrMiss reports that no entry exists for a key. It is the only Load
// error that does not indicate a damaged cache.
var ErrMiss = errors.New("artifact: cache miss")

// CorruptError reports a cache entry that exists but cannot be
// trusted: wrong magic, mismatched schema version, truncated payload,
// or checksum failure. Callers should fall back to the cold path and
// record a diagnostic; a subsequent Store overwrites the bad entry.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("artifact: corrupt cache entry %s: %s", e.Path, e.Reason)
}

// entry header: magic, schema version, payload length, FNV-1a payload
// checksum (see frame.go). Fixed-width little-endian so corruption
// detection never depends on parsing variable-length fields.
var magic = [4]byte{'C', 'C', 'A', 'F'}

const headerSize = 4 + 4 + 8 + 8

// Cache is a content-addressed artifact store rooted at one directory.
// It is safe for concurrent use: entries are written to a temporary
// file and renamed into place, and same-key writers race benignly
// (identical content either way).
type Cache struct {
	base string // dir as passed to Open
	root string // dir/v<SchemaVersion>
}

// Open creates (if needed) and returns the cache rooted at dir.
// Entries are namespaced under a schema-version subdirectory, so a
// future encoding change starts from an empty namespace instead of
// misreading old entries.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("artifact: empty cache directory")
	}
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Cache{base: dir, root: root}, nil
}

// Dir returns the version-namespaced root directory of the cache.
func (c *Cache) Dir() string { return c.root }

// BaseDir returns the directory the cache was opened at — the value a
// second Open (e.g. in a shard-worker process) needs to share this
// cache's namespace.
func (c *Cache) BaseDir() string { return c.base }

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(kind Kind, key Key) string {
	h := key.Hex()
	return filepath.Join(c.root, string(kind), h[:2], h)
}

// Load returns the payload stored under (kind, key). A missing entry
// returns ErrMiss; an unreadable or invalid one returns *CorruptError.
func (c *Cache) Load(kind Kind, key Key) ([]byte, error) {
	p := c.path(kind, key)
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, &CorruptError{Path: p, Reason: err.Error()}
	}
	payload, err := DecodeFrame(magic, SchemaVersion, data)
	if err != nil {
		var fe *FrameError
		if errors.As(err, &fe) {
			return nil, &CorruptError{Path: p, Reason: fe.Reason}
		}
		return nil, &CorruptError{Path: p, Reason: err.Error()}
	}
	return payload, nil
}

// Store writes payload under (kind, key), atomically replacing any
// existing entry.
func (c *Cache) Store(kind Kind, key Key, payload []byte) error {
	p := c.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	buf := EncodeFrame(magic, SchemaVersion, payload)
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	return nil
}

// ManifestEntry records one configuration's cache interaction in the
// last incremental run.
type ManifestEntry struct {
	// Name is the configuration's source name.
	Name string `json:"name"`
	// ContentHash is the hex content hash of the raw source bytes.
	ContentHash string `json:"content_hash"`
	// LexHit and CheckHit report which artifact kinds were replayed.
	LexHit   bool `json:"lex_hit"`
	CheckHit bool `json:"check_hit"`
}

// Manifest summarizes the most recent incremental run against this
// cache. It is informational: lookups are content-addressed, so
// correctness never depends on the manifest — it exists so operators
// and tools can see what the warm run reused and why.
type Manifest struct {
	Schema     int             `json:"schema"`
	OptionsFP  string          `json:"options_fp"`
	ContractFP string          `json:"contract_fp"`
	Configs    []ManifestEntry `json:"configs"`
}

// WriteManifest atomically replaces the cache's run manifest.
func (c *Cache) WriteManifest(m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	p := filepath.Join(c.root, "manifest.json")
	tmp, err := os.CreateTemp(c.root, ".tmp-manifest-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	return nil
}

// ReadManifest returns the manifest of the last incremental run, or
// ErrMiss when none has been written.
func (c *Cache) ReadManifest() (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(c.root, "manifest.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("artifact: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &m, nil
}
