package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"concord/internal/contracts"
	"concord/internal/intern"
	"concord/internal/lexer"
	"concord/internal/netdata"
)

// The binary encodings below are deliberately simple: uvarint lengths
// and counts, length-prefixed strings, and a per-artifact string table
// deduplicating the heavily repeated fields (patterns, displays, token
// type names). Decoding allocates one string per distinct table entry
// plus the per-line Raw/Text, which is what makes replay cheap
// relative to re-lexing.

// writer accumulates an encoding.
type writer struct {
	b []byte
}

func (w *writer) uvarint(u uint64) { w.b = binary.AppendUvarint(w.b, u) }

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// reader decodes with a sticky error, so call sites stay linear and the
// final err check catches any malformed field.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("artifact: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return u
}

// count reads a uvarint bounded by the remaining input, so a corrupt
// length can never drive a huge allocation.
func (r *reader) count() int {
	u := r.uvarint()
	if r.err == nil && u > uint64(len(r.b)-r.off) {
		r.fail("artifact: count %d exceeds remaining input %d", u, len(r.b)-r.off)
		return 0
	}
	return int(u)
}

func (r *reader) str() string {
	n := r.count()
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("artifact: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// stringTable deduplicates strings during encoding.
type stringTable struct {
	idx  map[string]uint64
	strs []string
}

func (t *stringTable) ref(s string) uint64 {
	if t.idx == nil {
		t.idx = make(map[string]uint64)
	}
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := uint64(len(t.strs))
	t.idx[s] = i
	t.strs = append(t.strs, s)
	return i
}

// EncodeConfig serializes a processed configuration (before metadata
// lines are appended). The encoding is name-independent: File fields
// are substituted at decode time, so renaming a file never invalidates
// its lex artifact. The second result is false when the configuration
// cannot round-trip — a parameter value of a kind the decoder cannot
// reconstruct (a custom netdata.Value implementation from a user token
// Parse func) — in which case the caller must not cache it.
func EncodeConfig(cfg *lexer.Config) ([]byte, bool) {
	var tab stringTable
	type lineEnc struct {
		pattern, display uint64
		params           [][2]uint64 // typeRef, kind; value string follows
	}
	// First pass: validate values and build the string table in a
	// deterministic first-use order.
	for i := range cfg.Lines {
		line := &cfg.Lines[i]
		if line.Meta {
			return nil, false // lex artifacts are pre-metadata by contract
		}
		tab.ref(line.Pattern)
		tab.ref(line.Display)
		for pi := range line.Params {
			if !encodableValue(line.Params[pi].Value) {
				return nil, false
			}
			tab.ref(line.Params[pi].Type)
		}
	}
	w := &writer{b: make([]byte, 0, 64*len(cfg.Lines))}
	w.uvarint(uint64(cfg.SourceLines))
	w.uvarint(uint64(len(tab.strs)))
	for _, s := range tab.strs {
		w.str(s)
	}
	w.uvarint(uint64(len(cfg.Lines)))
	for i := range cfg.Lines {
		line := &cfg.Lines[i]
		w.uvarint(uint64(line.Num))
		w.str(line.Raw)
		w.str(line.Text)
		w.uvarint(tab.ref(line.Pattern))
		w.uvarint(tab.ref(line.Display))
		w.uvarint(uint64(len(line.Params)))
		for pi := range line.Params {
			p := &line.Params[pi]
			w.uvarint(tab.ref(p.Type))
			w.b = append(w.b, byte(p.Value.Kind()))
			w.str(p.Value.String())
		}
	}
	return w.b, true
}

// encodableValue reports whether a value is one of the built-in
// netdata kinds, whose canonical String() round-trips through the
// corresponding Parse function.
func encodableValue(v netdata.Value) bool {
	switch v.(type) {
	case netdata.Num, netdata.Hex, netdata.Bool, netdata.MAC, netdata.IP, netdata.Prefix, netdata.Str:
		return v.Kind() != netdata.KindInvalid
	default:
		return false
	}
}

// DecodeConfig reconstructs a configuration from EncodeConfig output,
// substituting the current run's source name and interning every
// pattern into the run's table so the compiled checker's dense-ID fast
// path works on replayed configs exactly as on freshly lexed ones.
func DecodeConfig(data []byte, name string, interns *intern.Table) (*lexer.Config, error) {
	r := &reader{b: data}
	cfg := &lexer.Config{Name: name, Interns: interns}
	cfg.SourceLines = int(r.uvarint())
	nStrs := r.count()
	if r.err != nil {
		return nil, r.err
	}
	strs := make([]string, nStrs)
	for i := range strs {
		strs[i] = r.str()
	}
	// Pattern IDs are interned once per distinct table entry, not once
	// per line.
	ids := make([]int32, nStrs)
	internID := func(ref uint64) (string, int32, error) {
		if ref >= uint64(nStrs) {
			return "", 0, fmt.Errorf("artifact: string ref %d out of range %d", ref, nStrs)
		}
		if ids[ref] == 0 && interns != nil {
			ids[ref] = interns.ID(strs[ref])
		}
		return strs[ref], ids[ref], nil
	}
	nLines := r.count()
	if r.err != nil {
		return nil, r.err
	}
	cfg.Lines = make([]lexer.Line, 0, nLines)
	for i := 0; i < nLines; i++ {
		var line lexer.Line
		line.File = name
		line.Num = int(r.uvarint())
		line.Raw = r.str()
		line.Text = r.str()
		pRef := r.uvarint()
		dRef := r.uvarint()
		nParams := r.count()
		if r.err != nil {
			return nil, r.err
		}
		var err error
		if line.Pattern, line.PatternID, err = internID(pRef); err != nil {
			return nil, err
		}
		if dRef >= uint64(nStrs) {
			return nil, fmt.Errorf("artifact: string ref %d out of range %d", dRef, nStrs)
		}
		line.Display = strs[dRef]
		if nParams > 0 {
			line.Params = make([]lexer.Param, nParams)
			for pi := 0; pi < nParams; pi++ {
				tRef := r.uvarint()
				if r.err != nil {
					return nil, r.err
				}
				if r.off >= len(r.b) {
					return nil, fmt.Errorf("artifact: truncated param kind")
				}
				kind := netdata.Kind(r.b[r.off])
				r.off++
				raw := r.str()
				if r.err != nil {
					return nil, r.err
				}
				if tRef >= uint64(nStrs) {
					return nil, fmt.Errorf("artifact: string ref %d out of range %d", tRef, nStrs)
				}
				val, err := decodeValue(kind, raw)
				if err != nil {
					return nil, err
				}
				line.Params[pi] = lexer.Param{Name: lexer.VarName(pi), Type: strs[tRef], Value: val}
			}
		}
		cfg.Lines = append(cfg.Lines, line)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// decodeValue re-parses a value from its kind and canonical string.
func decodeValue(kind netdata.Kind, raw string) (netdata.Value, error) {
	switch kind {
	case netdata.KindNum:
		return netdata.ParseNum(raw)
	case netdata.KindHex:
		return netdata.ParseHex(raw)
	case netdata.KindBool:
		return netdata.ParseBool(raw)
	case netdata.KindMAC:
		return netdata.ParseMAC(raw)
	case netdata.KindIP4, netdata.KindIP6:
		if kind == netdata.KindIP4 {
			return netdata.ParseIP4(raw)
		}
		return netdata.ParseIP6(raw)
	case netdata.KindPfx4:
		return netdata.ParsePrefix4(raw)
	case netdata.KindPfx6:
		return netdata.ParsePrefix6(raw)
	case netdata.KindString:
		return netdata.Str(raw), nil
	default:
		return nil, fmt.Errorf("artifact: unknown value kind %d", kind)
	}
}

// CheckEntry is one configuration's cached check outcome: its sorted
// violations, the coverage counts the engine aggregates, and — for
// each unique contract — the ordered value sites the cross-config
// uniqueness merge needs, so a replayed config contributes to global
// uniqueness exactly as if it had been rescanned.
type CheckEntry struct {
	Violations  []contracts.Violation
	SourceLines int
	Covered     int
	ByCategory  map[contracts.Category]int
	// Unique maps unique-contract IDs to the config's value sites in
	// line order.
	Unique map[string][]contracts.UniqueSite
}

// EncodeCheckEntry serializes a check entry. Map fields are written in
// sorted key order so the encoding is deterministic.
func EncodeCheckEntry(e *CheckEntry) []byte {
	w := &writer{b: make([]byte, 0, 256)}
	w.uvarint(uint64(e.SourceLines))
	w.uvarint(uint64(e.Covered))
	cats := make([]string, 0, len(e.ByCategory))
	for c := range e.ByCategory {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	w.uvarint(uint64(len(cats)))
	for _, c := range cats {
		w.str(c)
		w.uvarint(uint64(e.ByCategory[contracts.Category(c)]))
	}
	w.uvarint(uint64(len(e.Violations)))
	for i := range e.Violations {
		v := &e.Violations[i]
		w.str(string(v.Category))
		w.str(v.ContractID)
		w.str(v.Contract)
		w.str(v.File)
		w.uvarint(uint64(v.Line))
		w.str(v.Detail)
	}
	ids := make([]string, 0, len(e.Unique))
	for id := range e.Unique {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.uvarint(uint64(len(ids)))
	for _, id := range ids {
		sites := e.Unique[id]
		w.str(id)
		w.uvarint(uint64(len(sites)))
		for _, s := range sites {
			w.str(s.Key)
			w.str(s.Display)
			w.uvarint(uint64(s.Line))
		}
	}
	return w.b
}

// DecodeCheckEntry reconstructs a check entry. ByCategory and Unique
// are always non-nil (possibly empty) maps, matching what a cold check
// produces.
func DecodeCheckEntry(data []byte) (*CheckEntry, error) {
	r := &reader{b: data}
	e := &CheckEntry{
		ByCategory: make(map[contracts.Category]int),
		Unique:     make(map[string][]contracts.UniqueSite),
	}
	e.SourceLines = int(r.uvarint())
	e.Covered = int(r.uvarint())
	nCats := r.count()
	for i := 0; i < nCats && r.err == nil; i++ {
		c := r.str()
		n := r.uvarint()
		if r.err == nil {
			e.ByCategory[contracts.Category(c)] = int(n)
		}
	}
	nViol := r.count()
	if r.err != nil {
		return nil, r.err
	}
	for i := 0; i < nViol; i++ {
		var v contracts.Violation
		v.Category = contracts.Category(r.str())
		v.ContractID = r.str()
		v.Contract = r.str()
		v.File = r.str()
		line := r.uvarint()
		v.Detail = r.str()
		if r.err != nil {
			return nil, r.err
		}
		if line > math.MaxInt32 {
			return nil, fmt.Errorf("artifact: implausible violation line %d", line)
		}
		v.Line = int(line)
		e.Violations = append(e.Violations, v)
	}
	nUniq := r.count()
	if r.err != nil {
		return nil, r.err
	}
	for i := 0; i < nUniq; i++ {
		id := r.str()
		nSites := r.count()
		if r.err != nil {
			return nil, r.err
		}
		sites := make([]contracts.UniqueSite, 0, nSites)
		for j := 0; j < nSites; j++ {
			var s contracts.UniqueSite
			s.Key = r.str()
			s.Display = r.str()
			line := r.uvarint()
			if r.err != nil {
				return nil, r.err
			}
			if line > math.MaxInt32 {
				return nil, fmt.Errorf("artifact: implausible site line %d", line)
			}
			s.Line = int(line)
			sites = append(sites, s)
		}
		e.Unique[id] = sites
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}
