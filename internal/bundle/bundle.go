// Package bundle implements Concord's crash-safe contract bundles: the
// durable unit of deployment for a resident contract service. A bundle
// packages a learned contract set together with operator overlay
// contracts and a persistent suppression list — the paper's §4
// operator feedback loop as durable state instead of a one-shot flag —
// under a checksummed manifest that records a digest of every payload
// file.
//
// The on-disk store (store.go) writes bundles atomically (temp
// directory + fsync + rename, with internal/artifact's frame header on
// the manifest), verifies every digest on load, quarantines corrupt
// bundles instead of failing the daemon, and maintains a last-known-good
// pointer so a crashed or bad push can never leave the service without
// a valid serving set. The journal (journal.go) gives learn jobs the
// same durability: a killed daemon recovers its jobs on restart.
package bundle

import (
	"encoding/json"
	"fmt"

	"concord/internal/artifact"
	"concord/internal/contracts"
)

// SchemaVersion is the bundle store's on-disk encoding version.
// Manifests written under a different version fail the frame check and
// are quarantined rather than misread.
const SchemaVersion = 1

// Frame magics: manifests, the last-known-good pointer, and journal
// entries are distinct file classes and must never parse as each other.
var (
	manifestMagic = [4]byte{'C', 'C', 'B', 'M'}
	pointerMagic  = [4]byte{'C', 'C', 'B', 'P'}
	journalMagic  = [4]byte{'C', 'C', 'B', 'J'}
)

// Bundle roles. The serve reload path only ever activates RoleServe
// bundles; learn jobs persist their results as RoleJob bundles, which
// exist for fingerprint re-registration on restart, not for serving as
// the default set.
const (
	RoleServe = "serve"
	RoleJob   = "job"
)

// Payload file names inside a bundle directory.
const (
	FileContracts    = "contracts.json"
	FileOverlay      = "overlay.json"
	FileSuppressions = "suppressions.json"
)

// Manifest is the checksummed table of contents of one bundle. It is
// stored framed (magic, schema version, length, checksum) so any
// truncation or torn write is detected before parsing, and it carries
// the SHA-256 digest of every payload file so payload corruption is
// detected before a single contract is decoded.
type Manifest struct {
	// Schema is the bundle encoding version.
	Schema int `json:"schema"`
	// ID is the store-assigned directory name (sequence + digest
	// prefix); empty until the bundle has been written to a store.
	ID string `json:"id,omitempty"`
	// Name is the operator-facing bundle name.
	Name string `json:"name"`
	// Revision is an opaque operator revision label.
	Revision string `json:"revision,omitempty"`
	// Role classifies the bundle: RoleServe (hot-reload candidate) or
	// RoleJob (persisted learn-job result).
	Role string `json:"role"`
	// Seq is the store-assigned monotonic sequence number; reload
	// activates the valid serve-role bundle with the highest Seq.
	Seq uint64 `json:"seq"`
	// CreatedUnix is the packing time in Unix seconds.
	CreatedUnix int64 `json:"created_unix"`
	// Contracts, Overlay, and Suppressions count the payload entries,
	// for listings that should not decode whole contract sets.
	Contracts    int `json:"contracts"`
	Overlay      int `json:"overlay,omitempty"`
	Suppressions int `json:"suppressions,omitempty"`
	// Files maps payload file name to hex SHA-256 digest.
	Files map[string]string `json:"files"`
}

// Bundle is one versioned contract package: a base (typically learned)
// contract set, optional operator overlay contracts appended to it, and
// a suppression list of contract IDs removed from serving.
type Bundle struct {
	Manifest Manifest
	// Contracts is the base contract set.
	Contracts *contracts.Set
	// Overlay holds operator-authored contracts served alongside the
	// base set; nil when the bundle carries none.
	Overlay *contracts.Set
	// Suppressions lists contract IDs excluded from the effective set —
	// the durable form of `concord check -suppress`.
	Suppressions []string
}

// New assembles an unwritten bundle with the given role; Seq and ID are
// assigned by Store.Write. A nil base set is rejected by Validate, not
// here, so callers can build incrementally.
func New(name, revision, role string, set, overlay *contracts.Set, suppressions []string) *Bundle {
	if role == "" {
		role = RoleServe
	}
	return &Bundle{
		Manifest: Manifest{
			Schema:   SchemaVersion,
			Name:     name,
			Revision: revision,
			Role:     role,
		},
		Contracts:    set,
		Overlay:      overlay,
		Suppressions: suppressions,
	}
}

// Validate rejects bundles that must never be written or activated.
func (b *Bundle) Validate() error {
	if b == nil || b.Contracts == nil {
		return fmt.Errorf("bundle: no contract set")
	}
	if b.Manifest.Role != RoleServe && b.Manifest.Role != RoleJob {
		return fmt.Errorf("bundle: unknown role %q", b.Manifest.Role)
	}
	return nil
}

// Effective computes the serving contract set: base contracts plus
// overlay contracts, minus every suppressed contract ID. Suppressions
// apply to overlay contracts too, so a suppression outlives an overlay
// that re-introduces the same contract.
func (b *Bundle) Effective() *contracts.Set {
	n := b.Contracts.Len()
	if b.Overlay != nil {
		n += b.Overlay.Len()
	}
	merged := &contracts.Set{Contracts: make([]contracts.Contract, 0, n)}
	merged.Contracts = append(merged.Contracts, b.Contracts.Contracts...)
	if b.Overlay != nil {
		merged.Contracts = append(merged.Contracts, b.Overlay.Contracts...)
	}
	if len(b.Suppressions) == 0 {
		return merged
	}
	ids := make(map[string]bool, len(b.Suppressions))
	for _, id := range b.Suppressions {
		ids[id] = true
	}
	eff, _ := merged.Without(ids)
	return eff
}

// payloads renders the bundle's payload files in canonical form and
// fills the manifest's digests and counts. Only non-empty payloads are
// written: a bundle without an overlay has no overlay.json at all.
func (b *Bundle) payloads() (map[string][]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, 3)
	data, err := json.Marshal(b.Contracts)
	if err != nil {
		return nil, fmt.Errorf("bundle: encoding contracts: %w", err)
	}
	out[FileContracts] = data
	if b.Overlay != nil && b.Overlay.Len() > 0 {
		data, err := json.Marshal(b.Overlay)
		if err != nil {
			return nil, fmt.Errorf("bundle: encoding overlay: %w", err)
		}
		out[FileOverlay] = data
	}
	if len(b.Suppressions) > 0 {
		data, err := json.Marshal(b.Suppressions)
		if err != nil {
			return nil, fmt.Errorf("bundle: encoding suppressions: %w", err)
		}
		out[FileSuppressions] = data
	}
	b.Manifest.Schema = SchemaVersion
	b.Manifest.Contracts = b.Contracts.Len()
	b.Manifest.Overlay = 0
	if b.Overlay != nil {
		b.Manifest.Overlay = b.Overlay.Len()
	}
	b.Manifest.Suppressions = len(b.Suppressions)
	b.Manifest.Files = make(map[string]string, len(out))
	for name, data := range out {
		b.Manifest.Files[name] = artifact.HashBytes("concord/bundle/file/v1", data).Hex()
	}
	return out, nil
}

// decodeManifest parses a framed manifest file.
func decodeManifest(data []byte) (*Manifest, error) {
	payload, err := artifact.DecodeFrame(manifestMagic, SchemaVersion, data)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("parsing manifest: %w", err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("manifest schema %d, want %d", m.Schema, SchemaVersion)
	}
	if m.Files[FileContracts] == "" {
		return nil, fmt.Errorf("manifest lists no %s digest", FileContracts)
	}
	return &m, nil
}

// decodePayloads reconstructs a bundle from its manifest and verified
// payload bytes.
func decodePayloads(m *Manifest, files map[string][]byte) (*Bundle, error) {
	b := &Bundle{Manifest: *m}
	b.Contracts = &contracts.Set{}
	if err := json.Unmarshal(files[FileContracts], b.Contracts); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", FileContracts, err)
	}
	if data, ok := files[FileOverlay]; ok {
		b.Overlay = &contracts.Set{}
		if err := json.Unmarshal(data, b.Overlay); err != nil {
			return nil, fmt.Errorf("decoding %s: %w", FileOverlay, err)
		}
	}
	if data, ok := files[FileSuppressions]; ok {
		if err := json.Unmarshal(data, &b.Suppressions); err != nil {
			return nil, fmt.Errorf("decoding %s: %w", FileSuppressions, err)
		}
	}
	return b, nil
}
