package bundle

// The on-disk bundle store. Layout under the root directory:
//
//	root/
//	  bundles/<id>/            committed bundles; <id> = %08d-<digest12>
//	    manifest.ccb           framed (magic+schema+length+checksum) JSON
//	    contracts.json         base contract set (digest in manifest)
//	    overlay.json           optional operator overlay contracts
//	    suppressions.json      optional suppressed contract IDs
//	  bundles/.tmp-*           in-flight writes (crash debris is swept)
//	  quarantine/<id>/         corrupt bundles moved aside, never deleted
//	  jobs/<id>.ccb            learn-job journal entries (journal.go)
//	  lkg.ccb                  framed last-known-good pointer
//
// Crash safety is rename-based: a bundle is assembled in a temp
// directory, every file is fsynced, and only then is the directory
// renamed into bundles/ and the parent fsynced. A process killed at any
// instant leaves either no trace (a .tmp-* directory swept by the next
// Scan) or a fully committed bundle. The last-known-good pointer is a
// separate atomically-replaced file, so activation order is: persist
// bundle, activate in memory, then advance the pointer — a crash
// between any two steps recovers to a consistent, previously-good
// state.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"concord/internal/artifact"
	"concord/internal/diag"
	"concord/internal/faultinject"
)

// CorruptError reports a bundle that exists on disk but cannot be
// trusted: framed-manifest corruption, a payload digest mismatch, a
// missing payload file, or undecodable contracts.
type CorruptError struct {
	ID     string
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("bundle: corrupt bundle %s at %s: %s", e.ID, e.Path, e.Reason)
}

// ErrNotFound reports a bundle ID with no committed directory.
var ErrNotFound = errors.New("bundle: not found")

// Store is a crash-safe bundle store rooted at one directory. It is
// safe for concurrent use within a process: writes, scans, and pointer
// updates serialize on one mutex (scans sweep crash debris, which must
// not race an in-flight write's temp directory).
type Store struct {
	root string

	mu      sync.Mutex
	lastSeq uint64
	journal *Journal
}

// Open creates (if needed) and returns the store rooted at dir. The
// sequence counter resumes past every committed and quarantined bundle,
// so IDs never collide across restarts.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("bundle: empty store directory")
	}
	for _, sub := range []string{bundlesDir, quarantineDir, jobsDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("bundle: %w", err)
		}
	}
	s := &Store{root: dir}
	s.journal = &Journal{dir: filepath.Join(dir, jobsDir)}
	for _, sub := range []string{bundlesDir, quarantineDir} {
		ents, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			return nil, fmt.Errorf("bundle: %w", err)
		}
		for _, e := range ents {
			if seq, ok := seqOf(e.Name()); ok && seq > s.lastSeq {
				s.lastSeq = seq
			}
		}
	}
	return s, nil
}

const (
	bundlesDir    = "bundles"
	quarantineDir = "quarantine"
	jobsDir       = "jobs"
	manifestFile  = "manifest.ccb"
	lkgFile       = "lkg.ccb"
)

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// Jobs returns the store's learn-job journal.
func (s *Store) Jobs() *Journal { return s.journal }

// seqOf parses the %08d- sequence prefix of a bundle directory name.
func seqOf(id string) (uint64, bool) {
	i := strings.IndexByte(id, '-')
	if i <= 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(id[:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Write commits the bundle: it assigns the next sequence number and ID,
// assembles the bundle in a temp directory with every file fsynced, and
// renames it into place. On return the bundle is durable; on a crash at
// any earlier instant no committed state changed. The assigned ID is
// returned and recorded in b.Manifest.
func (s *Store) Write(b *Bundle) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b.Manifest.Seq = s.lastSeq + 1
	if b.Manifest.CreatedUnix == 0 {
		b.Manifest.CreatedUnix = time.Now().Unix()
	}
	files, err := b.payloads()
	if err != nil {
		return "", err
	}
	// The ID folds in the contracts digest so operators can spot two
	// packs of the same set at a glance.
	digest := b.Manifest.Files[FileContracts]
	id := fmt.Sprintf("%08d-%s", b.Manifest.Seq, digest[:12])
	b.Manifest.ID = id

	manifestJSON, err := manifestJSON(&b.Manifest)
	if err != nil {
		return "", err
	}
	dir := filepath.Join(s.root, bundlesDir)
	tmp := filepath.Join(dir, ".tmp-"+id)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", fmt.Errorf("bundle: %w", err)
	}
	cleanup := func() { os.RemoveAll(tmp) }
	for name, data := range files {
		faultinject.At("bundle.store.write", name)
		if err := writeFileSync(filepath.Join(tmp, name), data); err != nil {
			cleanup()
			return "", err
		}
	}
	faultinject.At("bundle.store.write", "manifest")
	if err := writeFileSync(filepath.Join(tmp, manifestFile), artifact.EncodeFrame(manifestMagic, SchemaVersion, manifestJSON)); err != nil {
		cleanup()
		return "", err
	}
	if err := syncDir(tmp); err != nil {
		cleanup()
		return "", err
	}
	faultinject.At("bundle.store.write", "rename")
	if err := os.Rename(tmp, filepath.Join(dir, id)); err != nil {
		cleanup()
		return "", fmt.Errorf("bundle: committing %s: %w", id, err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	s.lastSeq = b.Manifest.Seq
	return id, nil
}

func manifestJSON(m *Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bundle: encoding manifest: %w", err)
	}
	return data, nil
}

// Load reads and fully verifies the committed bundle with the given ID:
// framed manifest first, then every payload digest, then the contract
// decoding. Any failure is a *CorruptError (or ErrNotFound).
func (s *Store) Load(id string) (*Bundle, error) {
	return s.load(filepath.Join(s.root, bundlesDir, id), id)
}

func (s *Store) load(dir, id string) (*Bundle, error) {
	mpath := filepath.Join(dir, manifestFile)
	data, err := os.ReadFile(mpath)
	if err != nil {
		if os.IsNotExist(err) {
			if _, derr := os.Stat(dir); os.IsNotExist(derr) {
				return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
			}
			return nil, &CorruptError{ID: id, Path: mpath, Reason: "missing manifest"}
		}
		return nil, &CorruptError{ID: id, Path: mpath, Reason: err.Error()}
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, &CorruptError{ID: id, Path: mpath, Reason: err.Error()}
	}
	files := make(map[string][]byte, len(m.Files))
	for name, wantHex := range m.Files {
		// Payload names come from the manifest; reject anything that
		// would escape the bundle directory.
		if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
			return nil, &CorruptError{ID: id, Path: mpath, Reason: fmt.Sprintf("manifest names suspicious payload %q", name)}
		}
		p := filepath.Join(dir, name)
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, &CorruptError{ID: id, Path: p, Reason: "missing payload: " + err.Error()}
		}
		if got := artifact.HashBytes("concord/bundle/file/v1", data).Hex(); got != wantHex {
			return nil, &CorruptError{ID: id, Path: p, Reason: "payload digest mismatch"}
		}
		files[name] = data
	}
	b, err := decodePayloads(m, files)
	if err != nil {
		return nil, &CorruptError{ID: id, Path: dir, Reason: err.Error()}
	}
	return b, nil
}

// Quarantine moves a committed bundle into the quarantine directory and
// records the reason alongside it. Quarantined bundles are never
// deleted automatically: they are evidence.
func (s *Store) Quarantine(id, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantineLocked(id, reason)
}

func (s *Store) quarantineLocked(id, reason string) error {
	src := filepath.Join(s.root, bundlesDir, id)
	dst := filepath.Join(s.root, quarantineDir, id)
	// A prior quarantine of the same ID (crash between rename and
	// rescan) is cleared first; its reason file is rewritten below.
	if err := os.RemoveAll(dst); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("bundle: quarantining %s: %w", id, err)
	}
	_ = os.WriteFile(filepath.Join(dst, "reason.txt"), []byte(reason+"\n"), 0o644)
	_ = syncDir(filepath.Join(s.root, quarantineDir))
	_ = syncDir(filepath.Join(s.root, bundlesDir))
	return nil
}

// Scan sweeps crash debris (.tmp-* directories), loads and verifies
// every committed bundle, quarantines the corrupt ones (each reported
// as a warn diagnostic, stage "bundle"), and returns the valid bundles
// sorted by ascending sequence number. A corrupt bundle never fails the
// scan: the caller always receives every bundle that can be trusted.
func (s *Store) Scan() ([]*Bundle, []diag.Diagnostic, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.root, bundlesDir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("bundle: %w", err)
	}
	var (
		out   []*Bundle
		diags []diag.Diagnostic
	)
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") {
			// A write that never committed: a crash mid-assembly. The
			// rename barrier guarantees nothing referenced it.
			if err := os.RemoveAll(filepath.Join(dir, name)); err == nil {
				diags = append(diags, diag.Diagnostic{
					Severity: diag.SevInfo, Stage: "bundle", Source: name,
					Message: "swept uncommitted bundle write (crash debris)",
				})
			}
			continue
		}
		if !e.IsDir() {
			continue
		}
		b, err := s.load(filepath.Join(dir, name), name)
		if err != nil {
			reason := err.Error()
			if qerr := s.quarantineLocked(name, reason); qerr != nil {
				reason = fmt.Sprintf("%s (quarantine failed: %v)", reason, qerr)
			}
			diags = append(diags, diag.Diagnostic{
				Severity: diag.SevWarn, Stage: "bundle", Source: name,
				Message: "quarantined corrupt bundle: " + reason, Cause: err,
			})
			continue
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Manifest.Seq < out[j].Manifest.Seq })
	return out, diags, nil
}

// lkgPointer is the framed payload of the last-known-good file.
type lkgPointer struct {
	Schema int    `json:"schema"`
	Bundle string `json:"bundle"`
}

// SetLastKnownGood atomically advances the last-known-good pointer to
// the committed bundle with the given ID.
func (s *Store) SetLastKnownGood(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, err := json.MarshalIndent(&lkgPointer{Schema: SchemaVersion, Bundle: id}, "", "  ")
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	return replaceFileSync(filepath.Join(s.root, lkgFile), artifact.EncodeFrame(pointerMagic, SchemaVersion, payload))
}

// LastKnownGood returns the ID the pointer names, or "" when no pointer
// has been written. A corrupt pointer is reported as a *CorruptError —
// callers should fall back to the newest valid bundle.
func (s *Store) LastKnownGood() (string, error) {
	p := filepath.Join(s.root, lkgFile)
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", &CorruptError{ID: "lkg", Path: p, Reason: err.Error()}
	}
	payload, err := artifact.DecodeFrame(pointerMagic, SchemaVersion, data)
	if err != nil {
		return "", &CorruptError{ID: "lkg", Path: p, Reason: err.Error()}
	}
	var ptr lkgPointer
	if err := json.Unmarshal(payload, &ptr); err != nil {
		return "", &CorruptError{ID: "lkg", Path: p, Reason: err.Error()}
	}
	return ptr.Bundle, nil
}

// writeFileSync writes data to a new file and fsyncs it before close,
// so the bytes are durable before the commit rename can be.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("bundle: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("bundle: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

// replaceFileSync atomically replaces path via a synced temp file and
// rename, then fsyncs the parent directory.
func replaceFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("bundle: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("bundle: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("bundle: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("bundle: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	// Some filesystems reject directory fsync; rename atomicity still
	// holds there, so the error is not fatal.
	_ = d.Sync()
	return d.Close()
}
