package bundle

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/diag"
	"concord/internal/faultinject"
)

// testSet builds a small contract set with distinguishable IDs.
func testSet(patterns ...string) *contracts.Set {
	s := &contracts.Set{}
	for _, p := range patterns {
		s.Contracts = append(s.Contracts, &contracts.Present{Pattern: p, Display: p})
	}
	return s
}

func openStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBundleRoundTrip writes a full bundle (base + overlay +
// suppressions) and loads it back identically, digests verified.
func TestBundleRoundTrip(t *testing.T) {
	st := openStore(t)
	b := New("edge", "v1", RoleServe, testSet("hostname .*", "ntp server .*"),
		testSet("banner motd .*"), []string{"present|ntp server .*"})
	id, err := st.Write(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "00000001-") {
		t.Fatalf("first bundle ID = %q, want 00000001-<digest> form", id)
	}
	if b.Manifest.ID != id || b.Manifest.Seq != 1 {
		t.Fatalf("manifest not updated by Write: %+v", b.Manifest)
	}
	got, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Manifest, b.Manifest) {
		t.Errorf("manifest round trip:\n got %+v\nwant %+v", got.Manifest, b.Manifest)
	}
	if !reflect.DeepEqual(got.Contracts, b.Contracts) {
		t.Errorf("contracts round trip mismatch")
	}
	if !reflect.DeepEqual(got.Overlay, b.Overlay) {
		t.Errorf("overlay round trip mismatch")
	}
	if !reflect.DeepEqual(got.Suppressions, b.Suppressions) {
		t.Errorf("suppressions round trip mismatch")
	}
	if got.Manifest.Contracts != 2 || got.Manifest.Overlay != 1 || got.Manifest.Suppressions != 1 {
		t.Errorf("manifest counts = %d/%d/%d, want 2/1/1",
			got.Manifest.Contracts, got.Manifest.Overlay, got.Manifest.Suppressions)
	}
}

// TestBundleEffective checks the serving-set computation: overlay
// contracts are appended, and suppressions remove contracts from both
// the base set and the overlay.
func TestBundleEffective(t *testing.T) {
	b := New("x", "", RoleServe,
		testSet("a", "b"),
		testSet("c"),
		[]string{"present|b", "present|c"})
	eff := b.Effective()
	if eff.Len() != 1 {
		t.Fatalf("effective set has %d contracts, want 1", eff.Len())
	}
	if id := eff.Contracts[0].ID(); id != "present|a" {
		t.Fatalf("surviving contract = %s, want present|a", id)
	}
	// No suppressions: base + overlay verbatim.
	b2 := New("y", "", RoleServe, testSet("a"), testSet("b"), nil)
	if n := b2.Effective().Len(); n != 2 {
		t.Fatalf("unsuppressed effective set has %d contracts, want 2", n)
	}
}

// TestStoreSeqResumes reopens a store and checks new bundles never
// reuse a sequence number, including across quarantined bundles.
func TestStoreSeqResumes(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := st.Write(New("a", "", RoleServe, testSet("a"), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Quarantine(id1, "test"); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st2.Write(New("b", "", RoleServe, testSet("b"), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id2, "00000002-") {
		t.Fatalf("bundle after reopen got ID %q, want seq 2 (seq 1 is quarantined)", id2)
	}
}

// TestScanSweepsTornWrite plants .tmp-* debris — the state a kill -9
// mid-Write leaves behind — and checks Scan removes it without touching
// committed bundles.
func TestScanSweepsTornWrite(t *testing.T) {
	st := openStore(t)
	id, err := st.Write(New("good", "", RoleServe, testSet("a"), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(st.Dir(), bundlesDir, ".tmp-00000009-deadbeef")
	if err := os.MkdirAll(debris, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(debris, "contracts.json"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	bundles, ds, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || bundles[0].Manifest.ID != id {
		t.Fatalf("scan after sweep returned %d bundles, want just %s", len(bundles), id)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Errorf("torn-write debris still present after scan")
	}
	var swept bool
	for _, d := range ds {
		if d.Severity == diag.SevInfo && strings.Contains(d.Message, "swept") {
			swept = true
		}
	}
	if !swept {
		t.Errorf("sweep produced no info diagnostic: %v", ds)
	}
}

// TestScanQuarantinesTruncatedManifest truncates a committed manifest
// (torn write after rename, or disk corruption): the bundle must move
// to quarantine with a reason file, other bundles and the last-known-
// good pointer must survive untouched.
func TestScanQuarantinesTruncatedManifest(t *testing.T) {
	st := openStore(t)
	goodID, err := st.Write(New("good", "", RoleServe, testSet("a"), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetLastKnownGood(goodID); err != nil {
		t.Fatal(err)
	}
	badID, err := st.Write(New("bad", "", RoleServe, testSet("b"), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(st.Dir(), bundlesDir, badID, manifestFile)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	bundles, ds, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || bundles[0].Manifest.ID != goodID {
		t.Fatalf("scan kept %d bundles, want just the intact %s", len(bundles), goodID)
	}
	var quarantined bool
	for _, d := range ds {
		if d.Severity == diag.SevWarn && strings.Contains(d.Message, "quarantined") {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("no quarantine diagnostic: %v", ds)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), quarantineDir, badID, "reason.txt")); err != nil {
		t.Errorf("quarantined bundle has no reason.txt: %v", err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), bundlesDir, badID)); !os.IsNotExist(err) {
		t.Errorf("corrupt bundle still in bundles/ after quarantine")
	}
	lkg, err := st.LastKnownGood()
	if err != nil || lkg != goodID {
		t.Errorf("last known good = %q, %v; want %q", lkg, err, goodID)
	}
}

// TestScanQuarantinesBitFlip flips one payload byte; the manifest
// digest check must catch it even though the JSON may still parse.
func TestScanQuarantinesBitFlip(t *testing.T) {
	st := openStore(t)
	id, err := st.Write(New("x", "", RoleServe, testSet("abc"), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(st.Dir(), bundlesDir, id, FileContracts)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(id); err == nil {
		t.Fatal("Load accepted a bit-flipped payload")
	} else if ce, ok := err.(*CorruptError); !ok || !strings.Contains(ce.Reason, "digest mismatch") {
		t.Fatalf("Load error = %v, want *CorruptError with digest mismatch", err)
	}
	bundles, _, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 0 {
		t.Fatalf("scan kept %d bundles, want 0 (bit-flipped)", len(bundles))
	}
}

// TestCrashMidWriteLeavesNoCommittedState simulates kill -9 at every
// write step via faultinject: a panic before the rename must leave
// bundles/ free of the new ID, and the next Scan must recover to
// exactly the pre-write state.
func TestCrashMidWriteLeavesNoCommittedState(t *testing.T) {
	for _, step := range []string{FileContracts, "manifest", "rename"} {
		t.Run(step, func(t *testing.T) {
			st := openStore(t)
			goodID, err := st.Write(New("good", "", RoleServe, testSet("a"), nil, nil))
			if err != nil {
				t.Fatal(err)
			}
			faultinject.Set("bundle.store.write", faultinject.PanicOn("kill", step))
			defer faultinject.Reset()
			func() {
				defer func() { _ = recover() }()
				_, _ = st.Write(New("torn", "", RoleServe, testSet("b"), nil, nil))
				t.Error("injected crash did not fire")
			}()
			faultinject.Reset()
			bundles, _, err := st.Scan()
			if err != nil {
				t.Fatal(err)
			}
			if len(bundles) != 1 || bundles[0].Manifest.ID != goodID {
				t.Fatalf("after crash at %s: %d bundles committed, want only %s", step, len(bundles), goodID)
			}
			// The store must keep working after the simulated crash.
			if _, err := st.Write(New("after", "", RoleServe, testSet("c"), nil, nil)); err != nil {
				t.Fatalf("write after crash: %v", err)
			}
		})
	}
}

// TestLastKnownGoodPointer covers the pointer lifecycle: missing reads
// as empty, set/read round-trips, and corruption is a CorruptError
// rather than a wrong ID.
func TestLastKnownGoodPointer(t *testing.T) {
	st := openStore(t)
	if lkg, err := st.LastKnownGood(); err != nil || lkg != "" {
		t.Fatalf("fresh store LKG = %q, %v; want empty", lkg, err)
	}
	if err := st.SetLastKnownGood("00000001-abc"); err != nil {
		t.Fatal(err)
	}
	if lkg, err := st.LastKnownGood(); err != nil || lkg != "00000001-abc" {
		t.Fatalf("LKG = %q, %v; want 00000001-abc", lkg, err)
	}
	// Bit-flip the pointer file: the checksum must reject it.
	p := filepath.Join(st.Dir(), lkgFile)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LastKnownGood(); err == nil {
		t.Fatal("corrupt LKG pointer read back without error")
	} else if _, ok := err.(*CorruptError); !ok {
		t.Fatalf("corrupt LKG error = %T, want *CorruptError", err)
	}
}

// TestLoadRejectsSuspiciousPayloadNames hand-crafts a manifest whose
// file table tries to escape the bundle directory.
func TestLoadRejectsSuspiciousPayloadNames(t *testing.T) {
	st := openStore(t)
	id, err := st.Write(New("x", "", RoleServe, testSet("a"), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	b.Manifest.Files["../../etc/passwd"] = b.Manifest.Files[FileContracts]
	mj, err := manifestJSON(&b.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(st.Dir(), bundlesDir, id, manifestFile)
	if err := os.WriteFile(mpath, artifact.EncodeFrame(manifestMagic, SchemaVersion, mj), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(id); err == nil {
		t.Fatal("Load accepted a manifest with a path-escaping payload name")
	} else if !strings.Contains(err.Error(), "suspicious") {
		t.Fatalf("error = %v, want suspicious-payload rejection", err)
	}
}

// TestLoadMissingBundle distinguishes absent from corrupt.
func TestLoadMissingBundle(t *testing.T) {
	st := openStore(t)
	if _, err := st.Load("00000042-nothere"); err == nil {
		t.Fatal("Load of a missing bundle succeeded")
	} else if !strings.Contains(err.Error(), "not found") {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
}
