package bundle

// The learn-job journal: one framed JSON file per job under the
// store's jobs/ directory, atomically replaced on every state change.
// A resident daemon journals a job as running (with the learn request
// persisted so a restart can resume it), then rewrites it as done
// (naming the RoleJob bundle holding the learned set) or failed. On
// restart, Replay hands every decodable record back — the server
// resumes running jobs, re-registers done jobs' sets from their
// bundles, and marks undecodable entries failed with a diagnostic.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"concord/internal/artifact"
)

// Job states as journaled.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobRecord is the durable state of one learn job.
type JobRecord struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	State  string `json:"state"`
	// CreatedUnix and UpdatedUnix bound the job's lifetime in Unix
	// seconds.
	CreatedUnix int64 `json:"created_unix"`
	UpdatedUnix int64 `json:"updated_unix"`
	// Request is the original learn request body, persisted while the
	// job runs so a restarted daemon can resume it; cleared once the
	// job reaches a terminal state.
	Request json.RawMessage `json:"request,omitempty"`
	// BundleID names the RoleJob bundle holding a done job's learned
	// set; empty when persisting the bundle failed.
	BundleID string `json:"bundle_id,omitempty"`
	// Fingerprint is the learned set's registry fingerprint.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Contracts counts the learned contracts of a done job.
	Contracts int `json:"contracts,omitempty"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
}

// CorruptRecord reports one journal entry that could not be decoded
// during Replay; the server marks the job failed with a diagnostic.
type CorruptRecord struct {
	ID     string
	Path   string
	Reason string
}

// Journal persists learn-job records. Writes are atomic per record;
// the mutex only serializes same-ID writers.
type Journal struct {
	dir string
	mu  sync.Mutex
}

const journalExt = ".ccb"

// Put atomically writes (or replaces) the record for rec.ID.
func (j *Journal) Put(rec JobRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("bundle: journal record without ID")
	}
	rec.Schema = SchemaVersion
	payload, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return fmt.Errorf("bundle: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return replaceFileSync(filepath.Join(j.dir, rec.ID+journalExt),
		artifact.EncodeFrame(journalMagic, SchemaVersion, payload))
}

// Delete removes a job's record; a missing record is not an error.
func (j *Journal) Delete(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := os.Remove(filepath.Join(j.dir, id+journalExt))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

// Replay reads every journal entry: decodable records are returned
// sorted by ID, undecodable ones (truncated, bit-flipped, version-
// skewed, or syntactically invalid) come back as CorruptRecords so the
// caller can mark those jobs failed instead of crashing or silently
// forgetting them. Stray temp files from interrupted writes are swept.
func (j *Journal) Replay() ([]JobRecord, []CorruptRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("bundle: %w", err)
	}
	var (
		recs    []JobRecord
		corrupt []CorruptRecord
	)
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") {
			_ = os.Remove(filepath.Join(j.dir, name))
			continue
		}
		if e.IsDir() || !strings.HasSuffix(name, journalExt) {
			continue
		}
		id := strings.TrimSuffix(name, journalExt)
		p := filepath.Join(j.dir, name)
		data, err := os.ReadFile(p)
		if err != nil {
			corrupt = append(corrupt, CorruptRecord{ID: id, Path: p, Reason: err.Error()})
			continue
		}
		payload, err := artifact.DecodeFrame(journalMagic, SchemaVersion, data)
		if err != nil {
			corrupt = append(corrupt, CorruptRecord{ID: id, Path: p, Reason: err.Error()})
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			corrupt = append(corrupt, CorruptRecord{ID: id, Path: p, Reason: err.Error()})
			continue
		}
		if rec.ID != id {
			corrupt = append(corrupt, CorruptRecord{ID: id, Path: p, Reason: fmt.Sprintf("record ID %q does not match file name", rec.ID)})
			continue
		}
		switch rec.State {
		case JobRunning, JobDone, JobFailed:
		default:
			corrupt = append(corrupt, CorruptRecord{ID: id, Path: p, Reason: fmt.Sprintf("unknown job state %q", rec.State)})
			continue
		}
		recs = append(recs, rec)
	}
	return recs, corrupt, nil
}
