package bundle

import (
	"os"
	"path/filepath"
	"testing"

	"concord/internal/artifact"
)

// FuzzBundleManifest feeds arbitrary bytes — seeded with truncations,
// bit flips, and version skews of a real manifest — through the full
// load path. The invariant is the activation safety property: corrupt
// input must never panic and never produce a loadable bundle unless the
// frame, schema, and digests all verify.
func FuzzBundleManifest(f *testing.F) {
	dir, err := os.MkdirTemp("", "concord-fuzz-bundle-")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	st, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	id, err := st.Write(New("seed", "v1", RoleServe, testSet("hostname .*"), testSet("ntp .*"), []string{"present|ntp .*"}))
	if err != nil {
		f.Fatal(err)
	}
	mpath := filepath.Join(dir, bundlesDir, id, manifestFile)
	valid, err := os.ReadFile(mpath)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                         // truncated mid-payload
	f.Add(valid[:10])                                                                   // truncated mid-header
	f.Add([]byte{})                                                                     // empty
	f.Add([]byte("CCBM garbage"))                                                       // right magic, junk body
	f.Add(artifact.EncodeFrame(manifestMagic, SchemaVersion+7, []byte(`{"schema":8}`))) // version skew
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped) // bit flip in the payload
	flippedHdr := append([]byte(nil), valid...)
	flippedHdr[5] ^= 0x01
	f.Add(flippedHdr) // bit flip in the header

	f.Fuzz(func(t *testing.T, data []byte) {
		// decodeManifest must contain arbitrary input without panicking.
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		// The frame verified: the payload must be a schema-correct
		// manifest that names a contracts digest. Write it over a real
		// bundle and require the store to either reject it (digest
		// mismatch against the real payloads) or load a fully verified
		// bundle — never crash, never half-load.
		if m.Schema != SchemaVersion {
			t.Fatalf("decodeManifest accepted schema %d", m.Schema)
		}
		if m.Files[FileContracts] == "" {
			t.Fatal("decodeManifest accepted a manifest without a contracts digest")
		}
		if err := os.WriteFile(mpath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		defer os.WriteFile(mpath, valid, 0o644)
		b, err := st.Load(id)
		if err != nil {
			return // rejected: digests did not verify
		}
		if b.Contracts == nil || b.Manifest.Files[FileContracts] == "" {
			t.Fatal("Load returned a bundle that did not fully verify")
		}
	})
}
