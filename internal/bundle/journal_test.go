package bundle

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concord/internal/artifact"
)

// TestJournalReplay is the table-driven restart-recovery matrix: each
// case plants journal state as a particular daemon death would leave it
// and checks Replay hands back exactly the records a recovering server
// needs — resumable running jobs, terminal jobs, and corrupt entries
// flagged rather than dropped.
func TestJournalReplay(t *testing.T) {
	running := JobRecord{ID: "learn-1", State: JobRunning, Request: json.RawMessage(`{"configs":[{"name":"a","text":"x"}]}`)}
	done := JobRecord{ID: "learn-2", State: JobDone, BundleID: "00000001-abc", Fingerprint: "fp", Contracts: 3}
	failed := JobRecord{ID: "learn-3", State: JobFailed, Error: "boom"}

	cases := []struct {
		name string
		// plant writes the journal state for the scenario.
		plant func(t *testing.T, j *Journal)
		// want maps job ID to expected state; wantCorrupt lists IDs that
		// must come back as corrupt records.
		want        map[string]string
		wantCorrupt []string
	}{
		{
			name: "clean exit",
			plant: func(t *testing.T, j *Journal) {
				mustPut(t, j, done)
				mustPut(t, j, failed)
			},
			want: map[string]string{"learn-2": JobDone, "learn-3": JobFailed},
		},
		{
			name: "killed mid-job",
			plant: func(t *testing.T, j *Journal) {
				mustPut(t, j, running)
				mustPut(t, j, done)
			},
			want: map[string]string{"learn-1": JobRunning, "learn-2": JobDone},
		},
		{
			name: "truncated record",
			plant: func(t *testing.T, j *Journal) {
				mustPut(t, j, running)
				mustPut(t, j, done)
				truncate(t, filepath.Join(j.dir, "learn-2"+journalExt))
			},
			want:        map[string]string{"learn-1": JobRunning},
			wantCorrupt: []string{"learn-2"},
		},
		{
			name: "bit-flipped record",
			plant: func(t *testing.T, j *Journal) {
				mustPut(t, j, failed)
				flipByte(t, filepath.Join(j.dir, "learn-3"+journalExt))
			},
			wantCorrupt: []string{"learn-3"},
		},
		{
			name: "version-skewed record",
			plant: func(t *testing.T, j *Journal) {
				payload, _ := json.Marshal(done)
				p := filepath.Join(j.dir, "learn-2"+journalExt)
				if err := os.WriteFile(p, artifact.EncodeFrame(journalMagic, SchemaVersion+1, payload), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantCorrupt: []string{"learn-2"},
		},
		{
			name: "record under wrong file name",
			plant: func(t *testing.T, j *Journal) {
				renamed := done
				payload, _ := json.Marshal(renamed)
				p := filepath.Join(j.dir, "learn-9"+journalExt)
				if err := os.WriteFile(p, artifact.EncodeFrame(journalMagic, SchemaVersion, payload), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantCorrupt: []string{"learn-9"},
		},
		{
			name: "unknown state",
			plant: func(t *testing.T, j *Journal) {
				weird := JobRecord{ID: "learn-4", State: "zombie"}
				payload, _ := json.Marshal(weird)
				p := filepath.Join(j.dir, "learn-4"+journalExt)
				if err := os.WriteFile(p, artifact.EncodeFrame(journalMagic, SchemaVersion, payload), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantCorrupt: []string{"learn-4"},
		},
		{
			name: "torn temp file swept",
			plant: func(t *testing.T, j *Journal) {
				mustPut(t, j, done)
				if err := os.WriteFile(filepath.Join(j.dir, ".tmp-12345"), []byte("half a reco"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: map[string]string{"learn-2": JobDone},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			j := st.Jobs()
			tc.plant(t, j)
			recs, corrupt, err := j.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != len(tc.want) {
				t.Fatalf("replayed %d records, want %d: %+v", len(recs), len(tc.want), recs)
			}
			for _, rec := range recs {
				if tc.want[rec.ID] != rec.State {
					t.Errorf("job %s replayed as %q, want %q", rec.ID, rec.State, tc.want[rec.ID])
				}
				if rec.State == JobRunning && len(rec.Request) == 0 {
					t.Errorf("running job %s lost its request", rec.ID)
				}
			}
			if len(corrupt) != len(tc.wantCorrupt) {
				t.Fatalf("got %d corrupt records, want %d: %+v", len(corrupt), len(tc.wantCorrupt), corrupt)
			}
			for i, id := range tc.wantCorrupt {
				if corrupt[i].ID != id {
					t.Errorf("corrupt[%d].ID = %s, want %s", i, corrupt[i].ID, id)
				}
				if corrupt[i].Reason == "" {
					t.Errorf("corrupt record %s has no reason", id)
				}
			}
			// Temp debris never survives a replay.
			ents, err := os.ReadDir(j.dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.HasPrefix(e.Name(), ".tmp-") {
					t.Errorf("replay left temp debris %s", e.Name())
				}
			}
		})
	}
}

// TestJournalPutDelete covers the per-record lifecycle.
func TestJournalPutDelete(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := st.Jobs()
	if err := j.Put(JobRecord{State: JobRunning}); err == nil {
		t.Fatal("Put accepted a record without an ID")
	}
	mustPut(t, j, JobRecord{ID: "learn-1", State: JobRunning})
	mustPut(t, j, JobRecord{ID: "learn-1", State: JobDone}) // replace
	recs, corrupt, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].State != JobDone || len(corrupt) != 0 {
		t.Fatalf("after replace: recs=%+v corrupt=%+v", recs, corrupt)
	}
	if err := j.Delete("learn-1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Delete("learn-1"); err != nil {
		t.Fatalf("double delete errored: %v", err)
	}
	recs, _, err = j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("deleted record still replayed: %+v", recs)
	}
}

func mustPut(t *testing.T, j *Journal, rec JobRecord) {
	t.Helper()
	if err := j.Put(rec); err != nil {
		t.Fatal(err)
	}
}

func truncate(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
