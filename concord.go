// Package concord learns and checks network configuration contracts,
// reproducing the system from "Concord: Learning Network Configuration
// Contracts" (EuroSys 2026).
//
// Contracts are lightweight syntactic rules checked locally against each
// configuration file: presence of required lines, line ordering,
// parameter types, arithmetic sequences, global uniqueness, and
// relational dependencies such as "every interface address is permitted
// by some prefix-list entry". Concord learns them automatically from
// example configurations (Learn) and evaluates them against new or
// changed configurations to localize likely bugs (Check).
//
// Quick start:
//
//	training, _ := concord.LoadGlob("configs/*.cfg")
//	result, _ := concord.Learn(training, nil, concord.DefaultOptions())
//	report, _ := concord.Check(result.Set, changed, nil, concord.DefaultOptions())
//	for _, v := range report.Violations {
//	    fmt.Printf("%s: %s\n", v.Location(), v.Detail)
//	}
//
// See the examples directory for runnable programs and cmd/concord for
// the command-line interface.
package concord

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"concord/internal/artifact"
	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/diag"
	"concord/internal/lexer"
	"concord/internal/netdata"
	"concord/internal/relations"
	"concord/internal/server"
	"concord/internal/telemetry"
)

// Re-exported types: the engine's options and inputs, the contract
// model, and results. Aliases keep the public API in one import path
// while the implementation lives in internal packages.
type (
	// Options configures learning and checking (support, confidence,
	// score threshold, parallelism, context embedding, constant
	// learning, minimization, category filter, user lexer tokens).
	Options = core.Options
	// Source is one input file (configuration or metadata).
	Source = core.Source
	// Engine runs the learn/check pipelines.
	Engine = core.Engine
	// LearnResult carries the learned contract set, minimization
	// statistics, and corpus statistics.
	LearnResult = core.LearnResult
	// CheckResult carries violations and coverage.
	CheckResult = core.CheckResult
	// ProcessStats summarizes a processed corpus.
	ProcessStats = core.ProcessStats
	// CoverageSummary aggregates per-line coverage.
	CoverageSummary = core.CoverageSummary

	// ContractSet is a collection of contracts with JSON serialization.
	ContractSet = contracts.Set
	// Contract is one learned or hand-written contract.
	Contract = contracts.Contract
	// Category names a contract category.
	Category = contracts.Category
	// Violation is one contract failure localized to a line.
	Violation = contracts.Violation
	// Stats is the statistical evidence behind a contract.
	Stats = contracts.Stats

	// TokenSpec extends the lexer with user-defined token types.
	TokenSpec = lexer.TokenSpec
	// Transform is a named data transformation used by relational
	// contracts; custom transforms plug in via Options.ExtraTransforms.
	Transform = relations.Transform
	// RelationDefinition is a user-defined relation (evaluation function
	// plus witness index); custom relations plug in via
	// Options.ExtraRelations.
	RelationDefinition = relations.Definition
	// Rel names a relation in contracts.
	Rel = relations.Rel
	// RelationIndex is the witness search structure a custom relation
	// supplies.
	RelationIndex = relations.Index
	// RelationEntry is one indexed witness (source + value).
	RelationEntry = relations.Entry
	// RelationSource identifies where a witness value came from.
	RelationSource = relations.Source

	// Value is a typed configuration value (the operand of relations and
	// transforms). The concrete types below cover the built-in kinds.
	Value = netdata.Value
	// Num is an arbitrary-precision integer value.
	Num = netdata.Num
	// Str is a free-form string value (also the usual transform result).
	Str = netdata.Str
	// IP is an IPv4 or IPv6 address value.
	IP = netdata.IP
	// Prefix is an IPv4 or IPv6 prefix value.
	Prefix = netdata.Prefix
	// MAC is a hardware address value.
	MAC = netdata.MAC

	// Recorder collects pipeline telemetry: stage spans (wall time +
	// allocation deltas), counters, and gauges. Attach one via
	// Options.Telemetry and snapshot it after Learn/Check.
	Recorder = telemetry.Recorder
	// TelemetryReport is a JSON-serializable recorder snapshot (the
	// schema behind concord's --metrics-json output).
	TelemetryReport = telemetry.Report
	// TelemetrySpan is one finished span in a report.
	TelemetrySpan = telemetry.SpanReport
	// Stage names a pipeline stage, used by Options.Progress callbacks
	// and span names.
	Stage = telemetry.Stage

	// Diagnostics is a concurrency-safe collector of non-fatal pipeline
	// faults (skipped files, truncated lines, contained panics). Attach
	// one via Options.Diagnostics to aggregate across runs; each
	// LearnResult/CheckResult also carries its own run's diagnostics.
	Diagnostics = diag.Collector
	// Diagnostic is one recorded fault or degradation.
	Diagnostic = diag.Diagnostic
	// Severity grades a diagnostic (info, warning, error).
	Severity = diag.Severity
	// DiagnosticsReport is the JSON-serializable diagnostics snapshot
	// (the schema behind the CLI's -diagnostics-json output).
	DiagnosticsReport = diag.Report

	// ArtifactCache is a versioned, content-addressed on-disk cache of
	// lexed configurations and per-configuration check results. Attach
	// one via Options.Artifacts (and set Options.Incremental) to make
	// warm runs skip re-lexing and re-checking unchanged inputs; see
	// OpenArtifactCache.
	ArtifactCache = artifact.Cache

	// EngineRegistry is a concurrency-safe registry of resident engines
	// keyed by contract-set fingerprint: the compile-once-serve-many
	// core of the service mode. Concurrent acquisitions of one set
	// share a single compiled checker, intern table, and lexer cache
	// (singleflighted, LRU-bounded); see NewEngineRegistry.
	EngineRegistry = core.EngineRegistry
	// RegistryEntry is one resident contract set: its fingerprint plus
	// shared compiled state, with per-request check/coverage methods.
	RegistryEntry = core.RegistryEntry
	// RegistryStats snapshots a registry's counters (entries, compiles,
	// evictions, hits, misses).
	RegistryStats = core.RegistryStats

	// Server is the resident contract service behind `concord serve`:
	// an HTTP daemon answering check, coverage, and learn requests over
	// an EngineRegistry; see NewServer and Serve.
	Server = server.Server
	// ServerOptions configures the daemon (address, timeouts, body
	// limit, registry size, drain budget); zero fields select defaults
	// and Validate rejects nonsense, mirroring Options.
	ServerOptions = server.Options
)

// ErrNoSources reports an operation given zero configuration sources —
// a glob matching no files (LoadGlob) or a service request with an
// empty corpus. Test with errors.Is.
var ErrNoSources = core.ErrNoSources

// NewEngineRegistry builds an engine registry whose entries all use the
// given engine options. maxEntries bounds the resident contract sets
// (0 selects the default); the least recently used entry is evicted at
// the bound, while in-flight holders of an evicted entry finish
// unharmed.
func NewEngineRegistry(opts Options, maxEntries int) (*EngineRegistry, error) {
	return core.NewEngineRegistry(opts, maxEntries)
}

// DefaultServerOptions returns the serve-mode defaults (loopback
// address, minute-scale timeouts, 64 MiB body cap, default registry
// size, 10s drain).
func DefaultServerOptions() ServerOptions { return server.DefaultOptions() }

// NewServer builds (without starting) a resident contract service.
// engineOpts configures every resident engine; opts configures the
// daemon. Call SetDefaultContracts to install a default set, then
// ListenAndServe, and Shutdown to drain.
func NewServer(engineOpts Options, opts ServerOptions) (*Server, error) {
	return server.New(engineOpts, opts)
}

// Serve runs the resident contract service until ctx is cancelled,
// then drains it gracefully within opts.DrainTimeout. set, when
// non-nil, becomes the server's default contract set (compiled before
// the listener opens, so the first request is warm). This is the
// blocking convenience behind `concord serve`.
func Serve(ctx context.Context, set *ContractSet, engineOpts Options, opts ServerOptions) error {
	srv, err := server.New(engineOpts, opts)
	if err != nil {
		return err
	}
	if set != nil {
		if _, err := srv.SetDefaultContracts(ctx, set); err != nil {
			return err
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), srv.DrainTimeout())
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	<-errc // http.ErrServerClosed after a clean shutdown
	return nil
}

// The pipeline stages reported to Options.Progress.
const (
	StageProcess  = telemetry.StageProcess
	StageMine     = telemetry.StageMine
	StageMinimize = telemetry.StageMinimize
	StageCheck    = telemetry.StageCheck
	StageCoverage = telemetry.StageCoverage
)

// NewRecorder returns an empty telemetry recorder. Assign it to
// Options.Telemetry to instrument a Learn/Check run, then call
// Snapshot or WriteJSON to extract the per-stage report.
func NewRecorder() *Recorder { return telemetry.NewRecorder() }

// ParseTelemetryReport decodes a JSON report written by
// Recorder.WriteJSON (or the CLI's --metrics-json flag).
func ParseTelemetryReport(data []byte) (TelemetryReport, error) {
	return telemetry.ParseReport(data)
}

// The diagnostic severities.
const (
	SevInfo  = diag.SevInfo
	SevWarn  = diag.SevWarn
	SevError = diag.SevError
)

// NewDiagnostics returns an empty diagnostics collector. Assign it to
// Options.Diagnostics to aggregate faults across runs, then call
// Report or WriteJSON to extract the snapshot.
func NewDiagnostics() *Diagnostics { return diag.New() }

// ParseDiagnosticsReport decodes a JSON report written by
// Diagnostics.WriteJSON (or the CLI's -diagnostics-json flag).
func ParseDiagnosticsReport(data []byte) (DiagnosticsReport, error) {
	return diag.ParseReport(data)
}

// The contract categories.
const (
	CatPresent  = contracts.CatPresent
	CatOrdering = contracts.CatOrdering
	CatType     = contracts.CatType
	CatSequence = contracts.CatSequence
	CatUnique   = contracts.CatUnique
	CatRelation = contracts.CatRelation
)

// The shard execution backends (Options.ShardBackend): in-process
// goroutine pool (the default) or a pool of shard-worker child
// processes with crash retries and straggler speculation. Results are
// byte-identical across backends.
const (
	ShardBackendInProcess = core.ShardBackendInProcess
	ShardBackendProcess   = core.ShardBackendProcess
)

// RunShardWorker serves the process shard backend's worker protocol
// over r/w (normally stdin/stdout): one Job frame, then one shard per
// Task frame until EOF. The concord CLI exposes it as the hidden
// `shard-worker` subcommand; embedders with their own binary can call
// it directly and point Options.ShardWorkerCommand at themselves.
func RunShardWorker(r io.Reader, w io.Writer) error { return core.RunShardWorker(r, w) }

// DefaultOptions returns the paper's default parameters: support 5,
// confidence 96%, context embedding and contract minimization enabled.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewEngine builds a reusable engine (compiles user token specs once).
func NewEngine(opts Options) (*Engine, error) { return core.New(opts) }

// Learn infers a contract set from training configurations plus optional
// metadata files (concord learn).
func Learn(training, metadata []Source, opts Options) (*LearnResult, error) {
	return LearnContext(context.Background(), training, metadata, opts)
}

// LearnContext is Learn under a cancellable context: the pipeline
// checks ctx cooperatively in every worker loop and per-category miner,
// aborting within one unit of work and returning ctx.Err().
func LearnContext(ctx context.Context, training, metadata []Source, opts Options) (*LearnResult, error) {
	eng, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return eng.LearnContext(ctx, training, metadata)
}

// Check evaluates a contract set against test configurations, reporting
// violations and per-line coverage (concord check).
func Check(set *ContractSet, test, metadata []Source, opts Options) (*CheckResult, error) {
	return CheckContext(context.Background(), set, test, metadata, opts)
}

// CheckContext is Check under a cancellable context; see LearnContext.
func CheckContext(ctx context.Context, set *ContractSet, test, metadata []Source, opts Options) (*CheckResult, error) {
	eng, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return eng.CheckContext(ctx, set, test, metadata)
}

// LoadGlob reads every file matching the glob pattern into sources,
// sorted by name for determinism. Source names preserve the path
// relative to the pattern's fixed directory prefix, so files with the
// same base name in different directories (a/r1.cfg, b/r1.cfg) stay
// distinguishable in violations.
//
// Every matched file is attempted: read failures are collected and
// returned joined (errors.Join), so one unreadable file no longer
// hides the others. The returned sources are nil when any read failed;
// use LoadGlobLenient to keep the readable ones. A pattern matching
// zero files returns an error wrapping ErrNoSources (it used to return
// nil, nil, silently producing empty corpora downstream); test with
// errors.Is(err, ErrNoSources) to treat it as empty instead.
func LoadGlob(pattern string) ([]Source, error) {
	out, ds, err := loadGlob(pattern)
	if err != nil {
		return nil, err
	}
	if err := diag.Join(ds); err != nil {
		return nil, fmt.Errorf("concord: %w", err)
	}
	return out, nil
}

// LoadGlobLenient is LoadGlob in degraded mode: unreadable files are
// skipped and reported as error diagnostics (stage "load") instead of
// failing the load. The error is non-nil only for a malformed glob
// pattern or one matching zero files (wrapping ErrNoSources).
func LoadGlobLenient(pattern string) ([]Source, []Diagnostic, error) {
	return loadGlob(pattern)
}

// loadWorkers bounds the file-read worker pool: enough to overlap I/O,
// capped so a huge glob doesn't open hundreds of files at once.
func loadWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func loadGlob(pattern string) ([]Source, []Diagnostic, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, nil, fmt.Errorf("concord: bad glob %q: %w", pattern, err)
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("concord: %w: no files match %q", core.ErrNoSources, pattern)
	}
	sort.Strings(paths)
	base := globBase(pattern)
	// Reads run on a bounded worker pool; results land in slots indexed
	// by the sorted path order, so the assembled output (and therefore
	// diagnostics order) is deterministic regardless of scheduling.
	type slot struct {
		src Source
		d   *Diagnostic
	}
	slots := make([]slot, len(paths))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < loadWorkers(len(paths)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				p := paths[i]
				data, err := os.ReadFile(p)
				if err != nil {
					slots[i].d = &Diagnostic{
						Severity: SevError,
						Stage:    "load",
						Source:   filepath.ToSlash(p),
						Message:  err.Error(),
						Cause:    err,
					}
					continue
				}
				name := p
				if rel, err := filepath.Rel(base, p); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
				slots[i].src = Source{Name: filepath.ToSlash(name), Text: data}
			}
		}()
	}
	wg.Wait()
	var out []Source
	var ds []Diagnostic
	for i := range slots {
		if slots[i].d != nil {
			ds = append(ds, *slots[i].d)
			continue
		}
		out = append(out, slots[i].src)
	}
	return out, ds, nil
}

// globBase returns the longest directory prefix of a glob pattern that
// contains no metacharacters; names of matched files are reported
// relative to it.
func globBase(pattern string) string {
	dir := filepath.Dir(pattern)
	for strings.ContainsAny(dir, `*?[\`) {
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
	return dir
}

// OpenArtifactCache opens (creating if necessary) the artifact cache
// rooted at dir, for use as Options.Artifacts. Entries are
// content-addressed and versioned: any input, option, or contract-set
// change misses naturally, corrupt entries degrade to the cold path
// with a warning diagnostic, and results are identical with or without
// a cache (the CLI's -cache-dir / -incremental flags).
func OpenArtifactCache(dir string) (*ArtifactCache, error) {
	return artifact.Open(dir)
}

// DefaultTransforms returns the built-in data transformation registry
// (identity, hex, str, IP octets, MAC segments).
func DefaultTransforms() []Transform { return relations.DefaultTransforms() }

// NewFuncIndex adapts a relation's Holds function into a linear-scan
// witness index, convenient for prototyping custom relations (see
// RelationDefinition).
func NewFuncIndex(rel Rel, holds func(lhs, witness Value) bool) RelationIndex {
	return relations.NewFuncIndex(rel, holds)
}

// NewKeyedIndex builds a hash-bucketed witness index for custom
// relations whose matches can be keyed (e.g. /31 peers keyed by their
// shared upper bits); see relations.KeyedIndex.
func NewKeyedIndex(rel Rel, keyOf func(v Value) (string, bool), verify func(lhs, witness Value) bool) RelationIndex {
	return relations.NewKeyedIndex(rel, keyOf, verify)
}
