// Command concord-experiments regenerates every table and figure of the
// paper's evaluation (§5) on the synthetic datasets. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	concord-experiments -experiment all
//	concord-experiments -experiment table3 -scale 0.5
//	concord-experiments -experiment figure6 -role W1
//
// Experiments: table3, figure6, table4, table5, figure7, figure8,
// table6, figure9, table7, table8, optimization, incidents, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"concord/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = full evaluation)")
	role := flag.String("role", "W1", "role for figure6/optimization")
	f7roles := flag.String("figure7-roles", "", "comma-separated roles for figure7 (default: all)")
	timeout := flag.Duration("bf-timeout", 2*time.Minute, "brute-force timeout for the optimization ablation")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "concord-experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "concord-experiments:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "concord-experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "concord-experiments:", err)
			}
		}()
	}

	r := harness.NewRunner(*scale)
	w := os.Stdout
	run := func(name string, f func() error) {
		fmt.Fprintf(w, "\n===== %s =====\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "concord-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "(%s completed in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}

	all := harness.AllRoles()
	figure7Roles := all
	if *f7roles != "" {
		figure7Roles = strings.Split(*f7roles, ",")
	}
	experiments := map[string]func() error{
		"table3":  func() error { return r.Table3(w, all) },
		"figure6": func() error { _, err := r.Figure6(w, *role, 5); return err },
		"table4":  func() error { return r.Table4(w, all) },
		"table5":  func() error { return r.Table5(w, all) },
		"figure7": func() error { _, err := r.Figure7(w, figure7Roles); return err },
		"figure8": func() error { _, err := r.Figure8(w, all); return err },
		"table6":  func() error { _, err := r.Table6(w); return err },
		"figure9": func() error { _, err := r.Figure9(w); return err },
		"table7":  func() error { _, err := r.Table7(w); return err },
		"table8":  func() error { return r.Table8(w, 5) },
		"optimization": func() error {
			_, err := r.Optimization(w, *role, *timeout)
			return err
		},
		"incidents": func() error { _, err := r.Incidents(w); return err },
	}

	if *experiment == "all" {
		// Order mirrors the paper's evaluation section.
		for _, name := range []string{
			"table3", "figure6", "table4", "table5", "figure7", "figure8",
			"table6", "figure9", "table7", "table8", "optimization", "incidents",
		} {
			run(name, experiments[name])
		}
		return
	}
	f, ok := experiments[*experiment]
	if !ok {
		var names []string
		for n := range experiments {
			names = append(names, n)
		}
		fmt.Fprintf(os.Stderr, "concord-experiments: unknown experiment %q (have: %s, all)\n",
			*experiment, strings.Join(names, ", "))
		os.Exit(2)
	}
	run(*experiment, f)
}
