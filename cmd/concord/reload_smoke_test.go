package main

// Process-level crash recovery: a real `concord serve` daemon is
// SIGKILLed — no drain, no deferred cleanup — and a fresh daemon over
// the same bundle directory must come back serving the identical
// last-known-good set, with the interrupted learn job recovered from
// its journal. This is the one chaos case in-process tests cannot
// cover: kill -9 gives the dying server no chance to run any code.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"concord/internal/synth"
)

// TestReloadSmokeChild is the helper process: it runs `concord serve`
// with a bundle store until killed. It only executes when re-exec'd by
// TestReloadSmokeKillRecover.
func TestReloadSmokeChild(t *testing.T) {
	if os.Getenv("CONCORD_RELOAD_SMOKE_CHILD") != "1" {
		t.Skip("helper process for TestReloadSmokeKillRecover")
	}
	err := serveRun(t.Context(), []string{
		"-addr", "127.0.0.1:0",
		"-bundle-dir", os.Getenv("CONCORD_RELOAD_SMOKE_DIR"),
		"-drain-timeout", "5s",
	}, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve child: %v\n", err)
		os.Exit(1)
	}
}

// startServeChild re-execs the test binary as a serve daemon rooted at
// dir and waits for its listen address.
func startServeChild(t *testing.T, dir string) (*exec.Cmd, string, *syncBuffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestReloadSmokeChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"CONCORD_RELOAD_SMOKE_CHILD=1",
		"CONCORD_RELOAD_SMOKE_DIR="+dir,
	)
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if addr, ok := serveAddrOf(out.String()); ok {
			return cmd, "http://" + addr, out
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never reported a listen address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// postSmoke POSTs JSON and returns status + body.
func postSmoke(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// stripTiming removes the wall-clock duration field from a check
// response so before/after-crash outputs compare on content alone.
func stripTiming(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("response is not JSON: %v: %s", err, data)
	}
	delete(m, "duration_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReloadSmokeKillRecover: push a bundle into daemon #1, start a
// learn job, kill -9 the daemon, and require daemon #2 over the same
// directory to serve byte-identical default-set output and account for
// the interrupted job.
func TestReloadSmokeKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	role, _ := synth.RoleByName("E1", 0.5)
	ds := synth.Generate(role)
	type srcJSON struct {
		Name string `json:"name"`
		Text string `json:"text"`
	}
	var configs []srcJSON
	for _, f := range ds.Configs {
		configs = append(configs, srcJSON{Name: f.Name, Text: string(f.Text)})
	}
	probe, _ := json.Marshal(map[string]any{"configs": configs[:2]})

	// Daemon #1: learn a set, push it as a bundle, record reference
	// output, then start a learn job and kill the daemon cold.
	child1, base1, _ := startServeChild(t, dir)
	learnBody, _ := json.Marshal(map[string]any{"configs": configs})
	status, body := postSmoke(t, base1+"/v1/learn", learnBody)
	if status != http.StatusAccepted {
		t.Fatalf("learn #1 = %d: %s", status, body)
	}
	var warm struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	// Wait for the first job so we have a learned set to push.
	var setJSON json.RawMessage
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base1 + "/v1/jobs/" + warm.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var js struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result *struct {
				Contracts int `json:"contracts"`
			} `json:"result"`
		}
		if err := json.Unmarshal(data, &js); err != nil {
			t.Fatal(err)
		}
		if js.State == "failed" {
			t.Fatalf("warmup learn failed: %s", js.Error)
		}
		if js.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warmup learn never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Rebuild the set client-side for the push (the CLI path a real
	// operator would use after `concord learn`).
	var lw bytes.Buffer
	for i, f := range ds.Configs {
		if err := os.WriteFile(dir+"/cfg-"+fmt.Sprint(i)+".cfg", f.Text, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	contractsPath := dir + "/contracts.json"
	if err := runLearn([]string{"-configs", dir + "/*.cfg", "-out", contractsPath}, &lw); err != nil {
		t.Fatalf("learn CLI: %v\n%s", err, lw.String())
	}
	raw, err := os.ReadFile(contractsPath)
	if err != nil {
		t.Fatal(err)
	}
	setJSON = raw
	pushBody, _ := json.Marshal(map[string]any{
		"name": "smoke", "revision": "r1", "contracts": setJSON,
	})
	status, body = postSmoke(t, base1+"/v1/bundles", pushBody)
	if status != http.StatusOK {
		t.Fatalf("bundle push = %d: %s", status, body)
	}
	var pushed struct {
		ID          string `json:"id"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &pushed); err != nil {
		t.Fatal(err)
	}
	status, ref := postSmoke(t, base1+"/v1/check", probe)
	if status != http.StatusOK {
		t.Fatalf("reference check = %d: %s", status, ref)
	}

	// Start a second learn job and kill the daemon before it can
	// finish: the journal now holds a running record.
	status, body = postSmoke(t, base1+"/v1/learn", learnBody)
	if status != http.StatusAccepted {
		t.Fatalf("learn #2 = %d: %s", status, body)
	}
	var interrupted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &interrupted); err != nil {
		t.Fatal(err)
	}
	if err := child1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = child1.Wait()

	// Daemon #2 over the same directory.
	_, base2, out2 := startServeChild(t, dir)
	if !strings.Contains(out2.String(), "recovered bundle "+pushed.ID) {
		t.Errorf("restart output does not announce recovery of %s:\n%s", pushed.ID, out2.String())
	}
	status, got := postSmoke(t, base2+"/v1/check", probe)
	if status != http.StatusOK {
		t.Fatalf("post-restart check = %d: %s", status, got)
	}
	if !bytes.Equal(stripTiming(t, got), stripTiming(t, ref)) {
		t.Errorf("post-restart default-set output diverges:\n got %s\nwant %s", got, ref)
	}
	// The interrupted job was recovered: resumed to completion or, if
	// it had already persisted, reloaded. Either way it must reach a
	// terminal state with a result, never vanish.
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base2 + "/v1/jobs/" + interrupted.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered job %s = %d: %s", interrupted.ID, resp.StatusCode, data)
		}
		var js struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result *struct {
				Fingerprint string `json:"fingerprint"`
				Contracts   int    `json:"contracts"`
			} `json:"result"`
		}
		if err := json.Unmarshal(data, &js); err != nil {
			t.Fatal(err)
		}
		if js.State == "failed" {
			t.Fatalf("interrupted job failed after recovery: %s", js.Error)
		}
		if js.State == "done" {
			if js.Result == nil || js.Result.Fingerprint == "" || js.Result.Contracts == 0 {
				t.Fatalf("recovered job has no usable result: %s", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interrupted job never reached a terminal state")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
