package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: serveRun writes to it
// from the command goroutine while the test polls it for the bound
// address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeCommand exercises the CLI layer end to end: learn a contract
// file, start `concord serve` on a free port, round-trip one check over
// HTTP, and shut down cleanly via context cancellation (the SIGTERM
// path).
func TestServeCommand(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	contractsPath := filepath.Join(dir, "contracts.json")
	var learnOut bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-out", contractsPath,
	}, &learnOut); err != nil {
		t.Fatalf("learn: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-contracts", contractsPath,
			"-drain-timeout", "15s",
		}, &out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if a, ok := serveAddrOf(out.String()); ok {
			addr = a
			break
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen address in output: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}

	// One check against the default set loaded from -contracts.
	body, _ := json.Marshal(map[string]any{
		"configs": []map[string]string{{"name": "probe.cfg", "text": "hostname probe\n"}},
	})
	resp, err = http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/check = %d: %s", resp.StatusCode, data)
	}
	var cr struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Fingerprint == "" {
		t.Errorf("check response carries no fingerprint: %s", data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve = %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not stop after cancellation\n%s", out.String())
	}
	if got := out.String(); !strings.Contains(got, "stopped") || !strings.Contains(got, "default contract set") {
		t.Errorf("serve output missing lifecycle lines:\n%s", got)
	}
}
