package main

// The bundle subcommand: operator tooling for the crash-safe bundle
// store behind `concord serve -bundle-dir`.
//
//	concord bundle pack    — package a learned contract file (plus an
//	                         optional operator overlay and suppression
//	                         list) into the store; a SIGHUP to the
//	                         daemon (or its next restart) activates it
//	concord bundle inspect — list the store's bundles, the last-known-
//	                         good pointer, and anything quarantined

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"concord/internal/bundle"
	"concord/internal/diag"
	"concord/internal/report"
)

func runBundle(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: concord bundle pack|inspect [options]")
	}
	switch args[0] {
	case "pack":
		return runBundlePack(args[1:], w)
	case "inspect":
		return runBundleInspect(args[1:], w)
	default:
		return fmt.Errorf("unknown bundle subcommand %q (want pack or inspect)", args[0])
	}
}

// runBundlePack writes a contract bundle into a store directory. The
// write is atomic and checksummed: a crash mid-pack leaves only swept
// temp debris, never a half-visible bundle.
func runBundlePack(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bundle pack", flag.ExitOnError)
	dir := fs.String("dir", "", "bundle store root (the daemon's -bundle-dir)")
	contractsPath := fs.String("contracts", "", "contract file from concord learn (required)")
	overlayPath := fs.String("overlay", "", "operator overlay contract file served alongside the base set")
	suppressPath := fs.String("suppress", "", "JSON file of contract IDs to suppress (operator feedback)")
	name := fs.String("name", "", "bundle name (default: the contracts file name)")
	revision := fs.String("revision", "", "bundle revision label (e.g. a VCS hash)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if *contractsPath == "" {
		return fmt.Errorf("-contracts is required")
	}
	data, err := os.ReadFile(*contractsPath)
	if err != nil {
		return err
	}
	set, err := report.ParseContractsJSON(data)
	if err != nil {
		return err
	}
	b := bundle.New(*name, *revision, bundle.RoleServe, set, nil, nil)
	if b.Manifest.Name == "" {
		b.Manifest.Name = *contractsPath
	}
	if *overlayPath != "" {
		data, err := os.ReadFile(*overlayPath)
		if err != nil {
			return err
		}
		ov, err := report.ParseContractsJSON(data)
		if err != nil {
			return fmt.Errorf("parsing overlay: %w", err)
		}
		b.Overlay = ov
	}
	if *suppressPath != "" {
		data, err := os.ReadFile(*suppressPath)
		if err != nil {
			return err
		}
		var ids []string
		if err := json.Unmarshal(data, &ids); err != nil {
			return fmt.Errorf("parsing %s: %w", *suppressPath, err)
		}
		b.Suppressions = ids
	}
	st, err := bundle.Open(*dir)
	if err != nil {
		return err
	}
	id, err := st.Write(b)
	if err != nil {
		return err
	}
	eff := b.Effective()
	fmt.Fprintf(w, "packed bundle %s: %d contract(s)", id, eff.Len())
	if n := b.Manifest.Contracts + b.Manifest.Overlay - eff.Len(); n > 0 {
		fmt.Fprintf(w, " (%d suppressed)", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "activate with SIGHUP to the daemon, or POST /v1/bundles\n")
	return nil
}

// runBundleInspect lists a store's bundles. Scanning also quarantines
// anything corrupt, exactly as the daemon would on reload, and reports
// what it moved.
func runBundleInspect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bundle inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "bundle store root (the daemon's -bundle-dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	st, err := bundle.Open(*dir)
	if err != nil {
		return err
	}
	bundles, ds, err := st.Scan()
	if err != nil {
		return err
	}
	lkg, lkgErr := st.LastKnownGood()
	for _, d := range ds {
		if d.Severity == diag.SevWarn {
			fmt.Fprintf(w, "quarantined: %s\n", d.Message)
		}
	}
	if lkgErr != nil {
		fmt.Fprintf(w, "last-known-good pointer unreadable: %v\n", lkgErr)
	}
	if len(bundles) == 0 {
		fmt.Fprintln(w, "no bundles")
		return nil
	}
	for _, b := range bundles {
		m := b.Manifest
		marker := " "
		if m.ID == lkg {
			marker = "*" // last known good
		}
		fmt.Fprintf(w, "%s %s  role=%-5s  contracts=%d", marker, m.ID, m.Role, m.Contracts)
		if m.Overlay > 0 {
			fmt.Fprintf(w, "  overlay=%d", m.Overlay)
		}
		if m.Suppressions > 0 {
			fmt.Fprintf(w, "  suppressions=%d", m.Suppressions)
		}
		fmt.Fprintf(w, "  %s", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
		if m.Name != "" {
			fmt.Fprintf(w, "  %s", m.Name)
		}
		if m.Revision != "" {
			fmt.Fprintf(w, "@%s", m.Revision)
		}
		fmt.Fprintln(w)
	}
	if lkg != "" {
		fmt.Fprintf(w, "last known good: %s\n", lkg)
	}
	return nil
}
