package main

// The serve subcommand: run Concord as a resident HTTP service. Where
// `concord check` compiles the contract set, checks one corpus, and
// exits, `concord serve` keeps compiled contract sets resident in a
// fingerprint-keyed registry and answers check/coverage/learn requests
// over HTTP until SIGINT/SIGTERM, then drains gracefully.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"concord"
	"concord/internal/report"
)

// runServe is the `concord serve` entry point: serveRun under a
// signal-cancelled context (SIGINT/SIGTERM start the graceful drain).
func runServe(args []string, w io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveRun(ctx, args, w)
}

// serveRun builds and runs the daemon until ctx is cancelled. Split
// from runServe so tests drive it with their own context instead of
// process signals.
func serveRun(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
	contractsPath := fs.String("contracts", "", "contract file served as the default set (optional; requests may embed their own)")
	registrySize := fs.Int("registry-size", 0, "resident contract sets kept hot (0 = default)")
	readTimeout := fs.Duration("read-timeout", 0, "HTTP read timeout (0 = default)")
	writeTimeout := fs.Duration("write-timeout", 0, "HTTP write timeout (0 = default)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request pipeline deadline (0 = default)")
	maxBodyBytes := fs.Int64("max-body-bytes", 0, "request body size cap in bytes (0 = default)")
	drainTimeout := fs.Duration("drain-timeout", 0, "graceful shutdown budget (0 = default)")
	bundleDir := fs.String("bundle-dir", "", "crash-safe bundle store root: enables POST /v1/bundles, SIGHUP hot reload, last-known-good recovery, and restart-surviving learn jobs")
	maxInflight := fs.Int("max-inflight", 0, "cap on concurrently executing work requests; excess load sheds with 429 (0 = unlimited)")
	jobRetention := fs.Duration("job-retention", 0, "how long finished learn jobs stay queryable (0 = default 1h)")
	rc := sharedFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := rc.options()
	if err != nil {
		return err
	}
	opts.Diagnostics = rc.diags
	opts.Strict = *rc.strict

	sopts := concord.DefaultServerOptions()
	sopts.Addr = *addr
	if *readTimeout > 0 {
		sopts.ReadTimeout = *readTimeout
	}
	if *writeTimeout > 0 {
		sopts.WriteTimeout = *writeTimeout
	}
	if *requestTimeout > 0 {
		sopts.RequestTimeout = *requestTimeout
	}
	if *maxBodyBytes > 0 {
		sopts.MaxBodyBytes = *maxBodyBytes
	}
	if *registrySize > 0 {
		sopts.RegistryMaxEntries = *registrySize
	}
	if *drainTimeout > 0 {
		sopts.DrainTimeout = *drainTimeout
	}
	sopts.BundleDir = *bundleDir
	sopts.MaxInflight = *maxInflight
	if *jobRetention > 0 {
		sopts.JobRetention = *jobRetention
	}

	srv, err := concord.NewServer(opts, sopts)
	if err != nil {
		return err
	}
	if id, fp := srv.ActiveBundle(); id != "" {
		fmt.Fprintf(w, "recovered bundle %s (fingerprint %s)\n", id, fp)
	}
	if *contractsPath != "" {
		data, err := os.ReadFile(*contractsPath)
		if err != nil {
			return err
		}
		set, err := report.ParseContractsJSON(data)
		if err != nil {
			return err
		}
		fp, err := srv.SetDefaultContracts(ctx, set)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "default contract set: %d contract(s), fingerprint %s\n", set.Len(), fp)
	}

	l, err := net.Listen("tcp", sopts.Addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "listening on http://%s\n", l.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	// SIGHUP rescans the bundle store and hot-swaps the newest valid
	// bundle in; a failed reload keeps the current set serving.
	hup := make(chan os.Signal, 1)
	if *bundleDir != "" {
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
	}
loop:
	for {
		select {
		case err := <-errc:
			return err
		case <-hup:
			if fp, err := srv.Reload(ctx); err != nil {
				fmt.Fprintf(w, "reload failed (previous set keeps serving): %v\n", err)
			} else {
				fmt.Fprintf(w, "reloaded; serving fingerprint %s\n", fp)
			}
		case <-ctx.Done():
			break loop
		}
	}
	fmt.Fprintf(w, "draining (up to %s)\n", srv.DrainTimeout())
	sctx, cancel := context.WithTimeout(context.Background(), srv.DrainTimeout())
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	<-errc // http.ErrServerClosed after a clean shutdown
	fmt.Fprintln(w, "stopped")
	return nil
}

// serveAddrOf extracts the bound address from serveRun's "listening on"
// output line; tests use it to reach an -addr :0 daemon.
func serveAddrOf(out string) (string, bool) {
	const prefix = "http://"
	i := strings.Index(out, prefix)
	if i < 0 {
		return "", false
	}
	addr := out[i+len(prefix):]
	if j := strings.IndexAny(addr, "\n "); j >= 0 {
		addr = addr[:j]
	}
	return addr, addr != ""
}
