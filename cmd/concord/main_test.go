package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concord"
	"concord/internal/contracts"
	"concord/internal/synth"
)

// writeDataset materializes a small edge dataset into a directory.
func writeDataset(t *testing.T, dir string, mutateFirst func(string) (string, bool)) {
	t.Helper()
	role, _ := synth.RoleByName("E1", 0.5)
	ds := synth.Generate(role)
	for i, f := range ds.Configs {
		text := string(f.Text)
		if i == 0 && mutateFirst != nil {
			var ok bool
			text, ok = mutateFirst(text)
			if !ok {
				t.Fatal("mutation failed")
			}
		}
		if err := os.WriteFile(filepath.Join(dir, f.Name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range ds.Meta {
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Text, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLearnCheckEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	contractsPath := filepath.Join(dir, "contracts.json")

	var out bytes.Buffer
	err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-out", contractsPath,
	}, &out)
	if err != nil {
		t.Fatalf("learn: %v", err)
	}
	if !strings.Contains(out.String(), "learned ") {
		t.Errorf("learn output: %s", out.String())
	}
	if _, err := os.Stat(contractsPath); err != nil {
		t.Fatalf("contracts file missing: %v", err)
	}

	// Checking the clean corpus: no violations, exit count 0.
	out.Reset()
	jsonPath := filepath.Join(dir, "report.json")
	htmlPath := filepath.Join(dir, "report.html")
	n, err := runCheck([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-contracts", contractsPath,
		"-out", jsonPath,
		"-html", htmlPath,
		"-disable", "ordering",
	}, &out)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if n != 0 {
		t.Errorf("clean corpus: %d violations\n%s", n, out.String())
	}
	for _, p := range []string{jsonPath, htmlPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("report %s missing or empty", p)
		}
	}
}

func TestCheckCatchesInjectedBug(t *testing.T) {
	trainDir := t.TempDir()
	writeDataset(t, trainDir, nil)
	contractsPath := filepath.Join(trainDir, "contracts.json")
	var out bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(trainDir, "*.cfg"),
		"-meta", filepath.Join(trainDir, "*.json"),
		"-out", contractsPath,
	}, &out); err != nil {
		t.Fatalf("learn: %v", err)
	}

	badDir := t.TempDir()
	writeDataset(t, badDir, synth.InjectMissingAggregate)
	out.Reset()
	n, err := runCheck([]string{
		"-configs", filepath.Join(badDir, "*.cfg"),
		"-meta", filepath.Join(badDir, "*.json"),
		"-contracts", contractsPath,
	}, &out)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if n == 0 {
		t.Error("injected bug not caught")
	}
	if !strings.Contains(out.String(), "aggregate-address") {
		t.Errorf("violation output does not mention the missing line:\n%s", out.String())
	}
}

// TestMetricsJSON exercises the observability flags: learn and check
// with -metrics-json must emit a parseable per-stage telemetry report.
func TestMetricsJSON(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	contractsPath := filepath.Join(dir, "contracts.json")
	metricsPath := filepath.Join(dir, "metrics.json")

	var out bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-out", contractsPath,
		"-metrics-json", metricsPath,
	}, &out); err != nil {
		t.Fatalf("learn: %v", err)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics file missing: %v", err)
	}
	rep, err := concord.ParseTelemetryReport(data)
	if err != nil {
		t.Fatalf("parse metrics: %v", err)
	}
	spans := make(map[string]bool)
	for _, sp := range rep.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"process", "mine", "minimize", "mine/present", "mine/relation"} {
		if !spans[want] {
			t.Errorf("learn metrics missing span %q", want)
		}
	}
	if rep.Counters["mine.present.candidates"] == 0 {
		t.Error("learn metrics missing miner counters")
	}
	if rep.Gauges["corpus.configs"] == 0 {
		t.Error("learn metrics missing corpus gauges")
	}
	if rep.WallMS < 0 {
		t.Error("negative total wall time")
	}

	// check with -metrics-json records the check span and counters.
	metricsPath2 := filepath.Join(dir, "metrics-check.json")
	out.Reset()
	if _, err := runCheck([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-contracts", contractsPath,
		"-disable", "ordering",
		"-metrics-json", metricsPath2,
	}, &out); err != nil {
		t.Fatalf("check: %v", err)
	}
	data, err = os.ReadFile(metricsPath2)
	if err != nil {
		t.Fatalf("check metrics file missing: %v", err)
	}
	rep, err = concord.ParseTelemetryReport(data)
	if err != nil {
		t.Fatalf("parse check metrics: %v", err)
	}
	found := false
	for _, sp := range rep.Spans {
		if sp.Name == "check" {
			found = true
		}
	}
	if !found {
		t.Error("check metrics missing check span")
	}
	if rep.Counters["check.contracts_evaluated"] == 0 {
		t.Error("check metrics missing contracts_evaluated counter")
	}
}

// TestTimeoutFlag verifies -timeout aborts a run with a context error.
func TestTimeoutFlag(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	var out bytes.Buffer
	err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-timeout", "1ns",
	}, &out)
	if err == nil {
		t.Fatal("1ns timeout did not abort the run")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error = %v, want deadline exceeded", err)
	}
}

func TestCLIErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runLearn([]string{"-configs", ""}, &out); err == nil {
		t.Error("missing -configs accepted")
	}
	if err := runLearn([]string{"-configs", "/nonexistent/*.cfg"}, &out); err == nil {
		t.Error("empty glob accepted")
	}
	if _, err := runCheck([]string{"-configs", "x"}, &out); err == nil {
		t.Error("missing -contracts accepted")
	}
}

func TestUserTokensFile(t *testing.T) {
	dir := t.TempDir()
	tokensPath := filepath.Join(dir, "tokens.json")
	if err := os.WriteFile(tokensPath, []byte(`[{"name":"iface","pattern":"et-[0-9]+"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "r1.cfg")
	if err := os.WriteFile(cfgPath, []byte("set interfaces et-1 mtu 9100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-tokens", tokensPath,
		"-support", "1",
		"-out", filepath.Join(dir, "c.json"),
	}, &out)
	if err != nil {
		t.Fatalf("learn with tokens: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "c.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[iface]") {
		t.Error("user token type missing from learned contracts")
	}
	// Malformed tokens file is rejected.
	badTokens := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badTokens, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-tokens", badTokens,
	}, &out); err == nil {
		t.Error("malformed tokens file accepted")
	}
}

func TestCoverageSubcommand(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	contractsPath := filepath.Join(dir, "contracts.json")
	var out bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-out", contractsPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runCoverage([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-contracts", contractsPath,
	}, &out); err != nil {
		t.Fatalf("coverage: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "covered ") {
		t.Errorf("no summary:\n%.500s", text)
	}
	if !strings.HasPrefix(text, "C ") && !strings.Contains(text, "\nC ") {
		t.Error("no covered-line annotations")
	}
	// -uncovered prints only dots.
	out.Reset()
	if err := runCoverage([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-contracts", contractsPath,
		"-uncovered",
	}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "\nC ") {
		t.Error("-uncovered printed covered lines")
	}
}

func TestSuppressionFlag(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	contractsPath := filepath.Join(dir, "contracts.json")
	var out bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-out", contractsPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	// Checking without metadata violates @meta contracts; suppressing
	// them silences exactly those.
	out.Reset()
	n1, err := runCheck([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-contracts", contractsPath,
		"-disable", "ordering,present,unique",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("expected @meta violations without metadata")
	}
	// Suppress every relational contract mentioning @meta.
	var ids []string
	data, err := os.ReadFile(contractsPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Contracts []struct {
			Category string          `json:"category"`
			Contract json.RawMessage `json:"contract"`
		} `json:"contracts"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	for _, c := range parsed.Contracts {
		if strings.Contains(string(c.Contract), "@meta") {
			var body struct {
				P1  string `json:"pattern1"`
				I1  int    `json:"param1"`
				T1  string `json:"transform1"`
				Rel string `json:"rel"`
				P2  string `json:"pattern2"`
				I2  int    `json:"param2"`
				T2  string `json:"transform2"`
			}
			if c.Category != "relation" {
				continue
			}
			if err := json.Unmarshal(c.Contract, &body); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, fmt.Sprintf("relation|%s|%d|%s|%s|%s|%d|%s",
				body.P1, body.I1, body.T1, body.Rel, body.P2, body.I2, body.T2))
		}
	}
	if len(ids) == 0 {
		t.Fatal("no @meta contracts found to suppress")
	}
	supPath := filepath.Join(dir, "suppress.json")
	supData, _ := json.Marshal(ids)
	if err := os.WriteFile(supPath, supData, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	n2, err := runCheck([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-contracts", contractsPath,
		"-disable", "ordering,present,unique",
		"-suppress", supPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n2 >= n1 {
		t.Errorf("suppression did not reduce violations: %d -> %d", n1, n2)
	}
	if !strings.Contains(out.String(), "suppressed ") {
		t.Error("suppression not reported")
	}
}

// writeHostileCorpus adds an unreadable entry (a directory matching
// the glob — reads fail with EISDIR even as root), a binary blob, and
// a 10 MB single-line file next to a healthy dataset.
func writeHostileCorpus(t *testing.T, dir string) {
	t.Helper()
	writeDataset(t, dir, nil)
	if err := os.MkdirAll(filepath.Join(dir, "unreadable.cfg"), 0o755); err != nil {
		t.Fatal(err)
	}
	binary := append([]byte("BIN\x00"), bytes.Repeat([]byte{0xff, 0x00}, 2048)...)
	if err := os.WriteFile(filepath.Join(dir, "binary.cfg"), binary, 0o644); err != nil {
		t.Fatal(err)
	}
	huge := append([]byte("hostname "), bytes.Repeat([]byte("x"), 10<<20)...)
	if err := os.WriteFile(filepath.Join(dir, "hugeline.cfg"), huge, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLearnLenientDiagnosticsJSON is the CLI acceptance scenario: a
// corpus with one unreadable, one binary, and one 10 MB-line file
// completes `concord learn -lenient` with per-file diagnostics in the
// -diagnostics-json report; default mode fails on the unreadable file;
// strict mode refuses the degradations.
func TestLearnLenientDiagnosticsJSON(t *testing.T) {
	dir := t.TempDir()
	writeHostileCorpus(t, dir)
	glob := filepath.Join(dir, "*.cfg")
	contractsPath := filepath.Join(dir, "contracts.json")
	diagPath := filepath.Join(dir, "diagnostics.json")

	// Default (neither -lenient nor -strict): the unreadable entry
	// fails the load outright.
	var out bytes.Buffer
	err := runLearn([]string{"-configs", glob, "-out", contractsPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "unreadable.cfg") {
		t.Fatalf("default learn = %v, want load failure naming unreadable.cfg", err)
	}

	// Lenient: completes, learns from the healthy files, and reports
	// each hostile file in the diagnostics JSON.
	out.Reset()
	err = runLearn([]string{
		"-configs", glob, "-out", contractsPath,
		"-lenient", "-diagnostics-json", diagPath,
	}, &out)
	if err != nil {
		t.Fatalf("lenient learn: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(contractsPath); err != nil {
		t.Fatalf("contracts file missing: %v", err)
	}
	data, err := os.ReadFile(diagPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := concord.ParseDiagnosticsReport(data)
	if err != nil {
		t.Fatalf("diagnostics report unparseable: %v\n%s", err, data)
	}
	bySource := map[string]concord.Diagnostic{}
	for _, d := range rep.Diagnostics {
		bySource[filepath.Base(d.Source)] = d
	}
	if d, ok := bySource["unreadable.cfg"]; !ok || d.Stage != "load" || d.Severity != concord.SevError {
		t.Errorf("unreadable.cfg diagnostic = %+v (present %v)", d, ok)
	}
	if d, ok := bySource["binary.cfg"]; !ok || d.Severity != concord.SevError {
		t.Errorf("binary.cfg diagnostic = %+v (present %v)", d, ok)
	}
	if d, ok := bySource["hugeline.cfg"]; !ok || d.Severity != concord.SevWarn ||
		!strings.Contains(d.Message, "truncated") {
		t.Errorf("hugeline.cfg diagnostic = %+v (present %v)", d, ok)
	}
	if rep.Errors < 2 || rep.Warnings < 1 {
		t.Errorf("report counts = %+v", rep)
	}
	if !strings.Contains(out.String(), "diagnostic(s) recorded") {
		t.Errorf("no diagnostics summary on stdout:\n%s", out.String())
	}

	// Strict on a readable-but-degraded corpus fails fast with the
	// same information in the error.
	if err := os.RemoveAll(filepath.Join(dir, "unreadable.cfg")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = runLearn([]string{"-configs", glob, "-out", contractsPath, "-strict"}, &out)
	if err == nil {
		t.Fatal("strict learn succeeded on degraded corpus")
	}
	if !strings.Contains(err.Error(), "binary.cfg") && !strings.Contains(err.Error(), "hugeline.cfg") {
		t.Errorf("strict error does not name a degraded file: %v", err)
	}
}

// TestFailOnDiagnosticsFlag asserts the exit-policy flag converts a
// successful-but-degraded run into the dedicated sentinel (exit 4).
func TestFailOnDiagnosticsFlag(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	binary := append([]byte("BIN\x00"), bytes.Repeat([]byte{0xff, 0x00}, 2048)...)
	if err := os.WriteFile(filepath.Join(dir, "binary.cfg"), binary, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-out", filepath.Join(dir, "contracts.json"),
		"-fail-on-diagnostics",
	}, &out)
	if !errors.Is(err, errDiagnostics) {
		t.Fatalf("err = %v, want errDiagnostics", err)
	}

	// A clean corpus with the flag still succeeds.
	clean := t.TempDir()
	writeDataset(t, clean, nil)
	out.Reset()
	if err := runLearn([]string{
		"-configs", filepath.Join(clean, "*.cfg"),
		"-out", filepath.Join(clean, "contracts.json"),
		"-fail-on-diagnostics",
	}, &out); err != nil {
		t.Fatalf("clean corpus with -fail-on-diagnostics: %v", err)
	}
}

// TestLenientStrictMutuallyExclusive asserts the flag combination is
// rejected up front.
func TestLenientStrictMutuallyExclusive(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	var out bytes.Buffer
	err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-out", filepath.Join(dir, "contracts.json"),
		"-lenient", "-strict",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("err = %v, want mutual-exclusion error", err)
	}
}

// TestCheckLenientDiagnostics runs the check subcommand over a corpus
// with a binary file: lenient mode checks the healthy files and
// reports the skip.
func TestCheckLenientDiagnostics(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, nil)
	contractsPath := filepath.Join(dir, "contracts.json")
	var out bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-out", contractsPath,
	}, &out); err != nil {
		t.Fatalf("learn: %v", err)
	}

	binary := append([]byte("BIN\x00"), bytes.Repeat([]byte{0xff, 0x00}, 2048)...)
	if err := os.WriteFile(filepath.Join(dir, "binary.cfg"), binary, 0o644); err != nil {
		t.Fatal(err)
	}
	diagPath := filepath.Join(dir, "check-diagnostics.json")
	out.Reset()
	n, err := runCheck([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-meta", filepath.Join(dir, "*.json"),
		"-contracts", contractsPath,
		"-disable", "ordering",
		"-lenient", "-diagnostics-json", diagPath,
	}, &out)
	if err != nil {
		t.Fatalf("check: %v\n%s", err, out.String())
	}
	if n != 0 {
		t.Errorf("healthy files reported %d violations:\n%s", n, out.String())
	}
	data, err := os.ReadFile(diagPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := concord.ParseDiagnosticsReport(data)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range rep.Diagnostics {
		if filepath.Base(d.Source) == "binary.cfg" {
			found = true
		}
	}
	if !found {
		t.Errorf("binary.cfg missing from check diagnostics: %+v", rep.Diagnostics)
	}
}

// TestCheckUniqueMissingFileLevel: a config missing a unique-existence
// line used to render as "file:0" (line zero). The violation is now
// file-level and prints the bare file name.
func TestCheckUniqueMissingFileLevel(t *testing.T) {
	dir := t.TempDir()
	set := &contracts.Set{Contracts: []contracts.Contract{
		&contracts.Unique{Pattern: "/hostname DEV[num]", Display: "/hostname DEV[a:num]", ParamIdx: 0},
	}}
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	contractsPath := filepath.Join(dir, "contracts.json")
	if err := os.WriteFile(contractsPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "r1.cfg"), []byte("router bgp 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := runCheck([]string{
		"-configs", filepath.Join(dir, "*.cfg"),
		"-contracts", contractsPath,
	}, &out)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if n != 1 {
		t.Fatalf("violations = %d, want 1\n%s", n, out.String())
	}
	if strings.Contains(out.String(), ":0") {
		t.Errorf("file-level violation rendered with a line number:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "r1.cfg: [unique]") {
		t.Errorf("expected file-level unique violation for r1.cfg:\n%s", out.String())
	}
}

// TestShardedCheckCLIMatchesUnsharded runs the same corpus through
// `concord check` with and without -shards and requires the JSON
// reports to match byte-for-byte outside the generation timestamp.
func TestShardedCheckCLIMatchesUnsharded(t *testing.T) {
	trainDir := t.TempDir()
	writeDataset(t, trainDir, nil)
	contractsPath := filepath.Join(trainDir, "contracts.json")
	var out bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(trainDir, "*.cfg"),
		"-meta", filepath.Join(trainDir, "*.json"),
		"-out", contractsPath,
	}, &out); err != nil {
		t.Fatalf("learn: %v", err)
	}

	badDir := t.TempDir()
	writeDataset(t, badDir, synth.InjectMissingAggregate)
	stripTimestamp := func(path string) string {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep map[string]json.RawMessage
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		delete(rep, "generated_at")
		canon, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(canon)
	}
	run := func(extra ...string) (int, string) {
		out.Reset()
		jsonPath := filepath.Join(t.TempDir(), "report.json")
		args := append([]string{
			"-configs", filepath.Join(badDir, "*.cfg"),
			"-meta", filepath.Join(badDir, "*.json"),
			"-contracts", contractsPath,
			"-out", jsonPath,
		}, extra...)
		n, err := runCheck(args, &out)
		if err != nil {
			t.Fatalf("check %v: %v", extra, err)
		}
		return n, stripTimestamp(jsonPath)
	}
	wantN, want := run()
	if wantN == 0 {
		t.Fatal("unsharded run caught no violations; the differential is vacuous")
	}
	for _, shards := range []string{"3", "16"} {
		gotN, got := run("-shards", shards, "-shard-workers", "2")
		if gotN != wantN || got != want {
			t.Errorf("-shards %s: %d violations, report diverges from unsharded (%d)", shards, gotN, wantN)
		}
	}

	if _, err := runCheck([]string{
		"-configs", filepath.Join(badDir, "*.cfg"),
		"-contracts", contractsPath,
		"-shards", "-2",
	}, &out); err == nil {
		t.Error("check accepted a negative -shards")
	}
}
