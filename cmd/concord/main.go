// Command concord learns network configuration contracts from example
// configurations and checks them against new or changed configurations,
// the CLI described in §4 of the paper.
//
// Usage:
//
//	concord learn -configs 'train/*.cfg' [-meta 'meta/*.json'] [-tokens tokens.json] -out contracts.json
//	concord check -configs 'test/*.cfg' -contracts contracts.json [-html report.html] [-out report.json]
//
// Shared flags: -support, -confidence, -score-threshold, -parallel,
// -no-embed (disable context embedding), -constants (constant-learning
// mode), -no-minimize, -disable (comma-separated categories, e.g.
// "ordering" as in the production deployment).
//
// Observability flags (all subcommands): -metrics-json emits a
// per-stage telemetry report (spans with wall time and allocation
// deltas, miner/checker counters), -cpuprofile and -memprofile write
// pprof profiles, and -timeout aborts a run that exceeds a deadline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"concord"
	"concord/internal/report"
)

// errDiagnostics is the sentinel returned when -fail-on-diagnostics is
// set and the run recorded at least one diagnostic; main maps it to
// exit code 4 (distinct from exit 3, violations found).
var errDiagnostics = errors.New("diagnostics recorded")

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "learn":
		err = runLearn(os.Args[2:], os.Stdout)
	case "check":
		var violations int
		violations, err = runCheck(os.Args[2:], os.Stdout)
		if err == nil && violations > 0 {
			os.Exit(3)
		}
	case "coverage":
		err = runCoverage(os.Args[2:], os.Stdout)
	case "serve":
		err = runServe(os.Args[2:], os.Stdout)
	case "bundle":
		err = runBundle(os.Args[2:], os.Stdout)
	case "bench":
		err = runBench(os.Args[2:], os.Stdout)
	case "shard-worker":
		// Hidden mode: serve the process shard backend's worker protocol
		// over stdin/stdout. Spawned by a parent concord run with
		// -shard-backend process; never invoked by hand.
		err = concord.RunShardWorker(os.Stdin, os.Stdout)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "concord: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "concord:", err)
		if errors.Is(err, errDiagnostics) {
			os.Exit(4)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  concord learn -configs GLOB [-meta GLOB] [-tokens FILE] [-out FILE] [options]
  concord check -configs GLOB -contracts FILE [-meta GLOB] [-out FILE] [-html FILE] [options]
  concord coverage -configs GLOB -contracts FILE [-meta GLOB] [-uncovered] [options]
  concord serve [-addr HOST:PORT] [-contracts FILE] [-bundle-dir DIR] [options]
  concord bundle pack -dir DIR -contracts FILE [-overlay FILE] [-suppress FILE]
  concord bundle inspect -dir DIR
  concord bench [-out FILE] [-scale F] [-roles LIST] [-count N]

serve (resident HTTP service; POST /v1/check, GET /v1/coverage,
POST /v1/learn + GET /v1/jobs/{id}, POST/GET /v1/bundles, GET /healthz,
GET /metrics):
  -addr HOST:PORT      listen address (default 127.0.0.1:8344)
  -contracts FILE      default contract set (requests may embed their own
                       or reference any resident set by fingerprint)
  -bundle-dir DIR      crash-safe bundle store: pushed/learned bundles
                       persist there, SIGHUP hot-reloads the newest one
                       (failed reloads roll back to the last known good),
                       and learn jobs survive a daemon restart
  -max-inflight N      shed work beyond N concurrent requests with 429
  -job-retention DUR   keep finished learn jobs queryable this long (1h)
  -registry-size N     resident contract sets kept hot (LRU bound)
  -read-timeout DUR    HTTP read timeout
  -write-timeout DUR   HTTP write timeout
  -request-timeout DUR per-request pipeline deadline (504 on expiry)
  -max-body-bytes N    request body cap (413 on excess)
  -drain-timeout DUR   graceful shutdown budget after SIGINT/SIGTERM

bundle (operator tooling for the serve bundle store):
  pack                 package contracts + overlay + suppressions into
                       the store atomically (checksummed manifest)
  inspect              list bundles, the last-known-good pointer, and
                       quarantined corruption

options:
  -support N           minimum configurations per pattern (default 5)
  -confidence F        required contract confidence (default 0.96)
  -score-threshold F   relational score threshold (default 8)
  -parallel N          worker count (default GOMAXPROCS)
  -no-embed            disable context embedding
  -constants           enable constant-learning mode
  -no-minimize         disable contract minimization
  -disable CATS        comma-separated categories to disable (e.g. ordering)

warm runs:
  -cache-dir DIR       content-addressed artifact cache (lexed configs +
                       check results); corrupt entries degrade to the cold
                       path, results are identical with or without a cache
  -incremental         replay cached per-config check results for unchanged
                       configs (requires -cache-dir)

fleet-scale checking and learning:
  -shards N            partition a check or learn run into N deterministic
                       contiguous shards streamed on a bounded pool; shards
                       stream configs one at a time (learn folds each into a
                       mergeable statistics accumulator), so peak memory is
                       bounded by workers instead of fleet size, and output
                       is byte-identical to an unsharded run
  -shard-workers N     max shards in flight at once (default -parallel)
  -shard-backend B     shard execution backend: "inprocess" (default) or
                       "process", which runs each shard in a pool of
                       worker child processes over checksummed pipes —
                       crashed workers are retried, stragglers re-run
                       speculatively, and output stays byte-identical

robustness:
  -lenient             skip unreadable input files with diagnostics
  -strict              abort on the first contained fault or degraded input
  -diagnostics-json F  write the run's diagnostics report to this file
  -fail-on-diagnostics exit 4 if any diagnostics were recorded

observability:
  -metrics-json FILE   write a per-stage telemetry report (spans, counters)
  -cpuprofile FILE     write a pprof CPU profile
  -memprofile FILE     write a pprof heap profile
  -timeout DUR         abort the run after this duration (e.g. 30s, 5m)`)
}

// filterCategories drops contracts whose category is not enabled, for
// check-time use of -disable on an already-learned set.
func filterCategories(set *concord.ContractSet, enabled []concord.Category) *concord.ContractSet {
	if len(enabled) == 0 {
		return set
	}
	on := make(map[concord.Category]bool, len(enabled))
	for _, c := range enabled {
		on[c] = true
	}
	out := &concord.ContractSet{}
	for _, c := range set.Contracts {
		if on[c.Category()] {
			out.Contracts = append(out.Contracts, c)
		}
	}
	return out
}

// runConfig carries the shared engine flags plus the robustness and
// observability flags (diagnostics, metrics report, profiles, timeout)
// common to every subcommand.
type runConfig struct {
	options func() (concord.Options, error)

	metricsJSON *string
	cpuProfile  *string
	memProfile  *string
	timeout     *time.Duration

	diagnosticsJSON *string
	lenient         *bool
	strict          *bool
	failOnDiag      *bool
	// diags collects every diagnostic of the run — lenient-load skips
	// plus the engine's contained faults — for the -diagnostics-json
	// report and the -fail-on-diagnostics policy.
	diags *concord.Diagnostics
}

// instrument prepares one run: it builds the (possibly deadlined)
// context, attaches a telemetry recorder to the options when
// --metrics-json is set, and starts CPU profiling. The returned finish
// func writes the requested artifacts; call it only on success, after
// the pipeline completes. The cancel func must always be deferred.
func (rc *runConfig) instrument(opts *concord.Options) (context.Context, context.CancelFunc, func(w io.Writer) error, error) {
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if *rc.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *rc.timeout)
	}
	opts.Diagnostics = rc.diags
	opts.Strict = *rc.strict
	var rec *concord.Recorder
	if *rc.metricsJSON != "" {
		rec = concord.NewRecorder()
		opts.Telemetry = rec
	}
	var cpuFile *os.File
	if *rc.cpuProfile != "" {
		f, err := os.Create(*rc.cpuProfile)
		if err != nil {
			cancel()
			return nil, nil, nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			cancel()
			return nil, nil, nil, err
		}
		cpuFile = f
	}
	finish := func(w io.Writer) error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *rc.cpuProfile)
		}
		if *rc.memProfile != "" {
			f, err := os.Create(*rc.memProfile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *rc.memProfile)
		}
		if rec != nil {
			f, err := os.Create(*rc.metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteJSON(f); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *rc.metricsJSON)
		}
		if *rc.diagnosticsJSON != "" {
			f, err := os.Create(*rc.diagnosticsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rc.diags.WriteJSON(f); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *rc.diagnosticsJSON)
		}
		if n := rc.diags.Len(); n > 0 {
			fmt.Fprintf(w, "%d diagnostic(s) recorded\n", n)
			if *rc.failOnDiag {
				return fmt.Errorf("%d %w", n, errDiagnostics)
			}
		}
		return nil
	}
	return ctx, cancel, finish, nil
}

// sharedFlags registers the engine options on a flag set.
func sharedFlags(fs *flag.FlagSet) *runConfig {
	support := fs.Int("support", 5, "minimum configurations per pattern (S)")
	confidence := fs.Float64("confidence", 0.96, "required contract confidence (C)")
	threshold := fs.Float64("score-threshold", 8, "relational score threshold")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	noEmbed := fs.Bool("no-embed", false, "disable context embedding")
	constants := fs.Bool("constants", false, "enable constant-learning mode")
	noMinimize := fs.Bool("no-minimize", false, "disable contract minimization")
	disable := fs.String("disable", "", "comma-separated categories to disable")
	tokens := fs.String("tokens", "", "JSON file of user lexer token specs")
	cacheDir := fs.String("cache-dir", "", "content-addressed artifact cache directory for warm runs")
	incremental := fs.Bool("incremental", false, "replay cached check results for unchanged configs (requires -cache-dir)")
	shards := fs.Int("shards", 0, "partition check and learn runs into N streamed shards for fleet-scale corpora (0/1 = unsharded)")
	shardWorkers := fs.Int("shard-workers", 0, "max shards in flight at once (0 = -parallel)")
	shardBackend := fs.String("shard-backend", "", "shard execution backend: inprocess (default) or process")
	rc := &runConfig{
		metricsJSON: fs.String("metrics-json", "", "write a per-stage telemetry report to this file"),
		cpuProfile:  fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		memProfile:  fs.String("memprofile", "", "write a pprof heap profile to this file"),
		timeout:     fs.Duration("timeout", 0, "abort the run after this duration (0 = none)"),

		diagnosticsJSON: fs.String("diagnostics-json", "", "write the run's diagnostics report to this file"),
		lenient:         fs.Bool("lenient", false, "skip unreadable input files with diagnostics instead of failing"),
		strict:          fs.Bool("strict", false, "abort on the first contained fault or degraded input"),
		failOnDiag:      fs.Bool("fail-on-diagnostics", false, "exit with code 4 if any diagnostics were recorded"),
		diags:           concord.NewDiagnostics(),
	}
	rc.options = func() (concord.Options, error) {
		opts := concord.DefaultOptions()
		if *rc.lenient && *rc.strict {
			return opts, fmt.Errorf("-lenient and -strict are mutually exclusive")
		}
		opts.Support = *support
		opts.Confidence = *confidence
		opts.ScoreThreshold = *threshold
		opts.Parallelism = *parallel
		opts.Shards = *shards
		opts.ShardWorkers = *shardWorkers
		opts.ShardBackend = *shardBackend
		opts.ContextEmbedding = !*noEmbed
		opts.ConstantLearning = *constants
		opts.Minimize = !*noMinimize
		if *disable != "" {
			enabled := map[concord.Category]bool{}
			for _, c := range []concord.Category{
				concord.CatPresent, concord.CatOrdering, concord.CatType,
				concord.CatSequence, concord.CatUnique, concord.CatRelation,
			} {
				enabled[c] = true
			}
			for _, name := range strings.Split(*disable, ",") {
				delete(enabled, concord.Category(strings.TrimSpace(name)))
			}
			for c, on := range enabled {
				if on {
					opts.Categories = append(opts.Categories, c)
				}
			}
		}
		if *tokens != "" {
			specs, err := loadTokens(*tokens)
			if err != nil {
				return opts, err
			}
			opts.UserTokens = specs
		}
		if *incremental && *cacheDir == "" {
			return opts, fmt.Errorf("-incremental requires -cache-dir")
		}
		if *cacheDir != "" {
			cache, err := concord.OpenArtifactCache(*cacheDir)
			if err != nil {
				return opts, err
			}
			opts.Artifacts = cache
			opts.Incremental = *incremental
		}
		return opts, nil
	}
	return rc
}

// tokenFile is the on-disk form of user token specs:
// [{"name": "iface", "pattern": "et-[0-9]+"}].
type tokenFile []struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
}

func loadTokens(path string) ([]concord.TokenSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tf tokenFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	var out []concord.TokenSpec
	for _, t := range tf {
		out = append(out, concord.TokenSpec{Name: t.Name, Pattern: t.Pattern})
	}
	return out, nil
}

// loadInputs reads the configuration and metadata globs. With -lenient,
// unreadable files are skipped and recorded as diagnostics instead of
// failing the run.
func (rc *runConfig) loadInputs(configGlob, metaGlob string) (srcs, meta []concord.Source, err error) {
	if configGlob == "" {
		return nil, nil, fmt.Errorf("-configs is required")
	}
	load := concord.LoadGlob
	if *rc.lenient {
		load = func(pattern string) ([]concord.Source, error) {
			out, ds, err := concord.LoadGlobLenient(pattern)
			for _, d := range ds {
				rc.diags.Add(d)
			}
			return out, err
		}
	}
	srcs, err = load(configGlob)
	if err != nil {
		return nil, nil, err
	}
	if len(srcs) == 0 {
		return nil, nil, fmt.Errorf("no files match %q", configGlob)
	}
	if metaGlob != "" {
		meta, err = load(metaGlob)
		// A metadata glob matching nothing is not an error: metadata is
		// optional context, unlike the configuration corpus.
		if err != nil && !errors.Is(err, concord.ErrNoSources) {
			return nil, nil, err
		}
	}
	return srcs, meta, nil
}

func runLearn(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	configGlob := fs.String("configs", "", "glob of training configuration files")
	metaGlob := fs.String("meta", "", "glob of metadata files")
	out := fs.String("out", "contracts.json", "output contract file")
	rc := sharedFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := rc.options()
	if err != nil {
		return err
	}
	srcs, meta, err := rc.loadInputs(*configGlob, *metaGlob)
	if err != nil {
		return err
	}
	ctx, cancel, finish, err := rc.instrument(&opts)
	if err != nil {
		return err
	}
	defer cancel()
	start := time.Now()
	lr, err := concord.LearnContext(ctx, srcs, meta, opts)
	if err != nil {
		return err
	}
	data, err := report.ContractsJSON(lr.Set, lr.Stats)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "learned %d contracts from %d configurations (%d lines, %d patterns) in %v\n",
		lr.Set.Len(), lr.Stats.Configs, lr.Stats.Lines, lr.Stats.Patterns,
		time.Since(start).Round(time.Millisecond))
	if lr.Minimization.Before > 0 {
		fmt.Fprintf(w, "minimization: %d -> %d relational contracts (%.1fx)\n",
			lr.Minimization.Before, lr.Minimization.After, lr.Minimization.ReductionFactor())
	}
	fmt.Fprintf(w, "wrote %s\n", *out)
	return finish(w)
}

func runCheck(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	configGlob := fs.String("configs", "", "glob of test configuration files")
	metaGlob := fs.String("meta", "", "glob of metadata files")
	contractsPath := fs.String("contracts", "", "contract file from concord learn")
	jsonOut := fs.String("out", "", "write JSON report to this file")
	htmlOut := fs.String("html", "", "write HTML report to this file")
	suppress := fs.String("suppress", "", "JSON file of contract IDs to suppress (operator feedback)")
	rc := sharedFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	opts, err := rc.options()
	if err != nil {
		return 0, err
	}
	if *contractsPath == "" {
		return 0, fmt.Errorf("-contracts is required")
	}
	data, err := os.ReadFile(*contractsPath)
	if err != nil {
		return 0, err
	}
	set, err := report.ParseContractsJSON(data)
	if err != nil {
		return 0, err
	}
	set = filterCategories(set, opts.Categories)
	if *suppress != "" {
		ids, err := loadSuppressions(*suppress)
		if err != nil {
			return 0, err
		}
		var n int
		set, n = set.Without(ids)
		fmt.Fprintf(w, "suppressed %d contract(s) per %s\n", n, *suppress)
	}
	srcs, meta, err := rc.loadInputs(*configGlob, *metaGlob)
	if err != nil {
		return 0, err
	}
	ctx, cancel, finish, err := rc.instrument(&opts)
	if err != nil {
		return 0, err
	}
	defer cancel()
	start := time.Now()
	cr, err := concord.CheckContext(ctx, set, srcs, meta, opts)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "checked %d configurations against %d contracts in %v\n",
		cr.Stats.Configs, set.Len(), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(w, "coverage: %.1f%% of %d lines\n", cr.Coverage.Percent(), cr.Coverage.TotalLines)
	for _, v := range cr.Violations {
		// Location omits the line number for file-level violations
		// (missing required or unique lines), so nothing prints "file:0".
		fmt.Fprintf(w, "%s: [%s] %s\n", v.Location(), v.Category, v.Detail)
	}
	rep := report.New(cr, time.Now())
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return 0, err
		}
		fmt.Fprintf(w, "wrote %s\n", *jsonOut)
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		if err := rep.WriteHTML(f); err != nil {
			return 0, err
		}
		fmt.Fprintf(w, "wrote %s\n", *htmlOut)
	}
	if len(cr.Violations) > 0 {
		fmt.Fprintf(w, "%d violation(s) found\n", len(cr.Violations))
	} else {
		fmt.Fprintln(w, "no violations")
	}
	return len(cr.Violations), finish(w)
}

// loadSuppressions reads a JSON array of contract IDs.
func loadSuppressions(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ids []string
	if err := json.Unmarshal(data, &ids); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	out := make(map[string]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out, nil
}

// runCoverage prints per-line coverage annotations (§3.9).
func runCoverage(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("coverage", flag.ExitOnError)
	configGlob := fs.String("configs", "", "glob of configuration files")
	metaGlob := fs.String("meta", "", "glob of metadata files")
	contractsPath := fs.String("contracts", "", "contract file from concord learn")
	uncoveredOnly := fs.Bool("uncovered", false, "print only uncovered lines")
	rc := sharedFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := rc.options()
	if err != nil {
		return err
	}
	if *contractsPath == "" {
		return fmt.Errorf("-contracts is required")
	}
	data, err := os.ReadFile(*contractsPath)
	if err != nil {
		return err
	}
	set, err := report.ParseContractsJSON(data)
	if err != nil {
		return err
	}
	set = filterCategories(set, opts.Categories)
	srcs, meta, err := rc.loadInputs(*configGlob, *metaGlob)
	if err != nil {
		return err
	}
	ctx, cancel, finish, err := rc.instrument(&opts)
	if err != nil {
		return err
	}
	defer cancel()
	eng, err := concord.NewEngine(opts)
	if err != nil {
		return err
	}
	lines, err := eng.CoverageLinesContext(ctx, set, srcs, meta)
	if err != nil {
		return err
	}
	covered := 0
	for _, lc := range lines {
		if lc.Covered {
			covered++
			if *uncoveredOnly {
				continue
			}
			cats := make([]string, 0, len(lc.Categories))
			for _, c := range lc.Categories {
				cats = append(cats, string(c))
			}
			fmt.Fprintf(w, "C %s:%d: %s  [%s]\n", lc.File, lc.Line, lc.Raw, strings.Join(cats, ","))
		} else {
			fmt.Fprintf(w, ". %s:%d: %s\n", lc.File, lc.Line, lc.Raw)
		}
	}
	if len(lines) > 0 {
		fmt.Fprintf(w, "covered %d/%d lines (%.1f%%)\n",
			covered, len(lines), 100*float64(covered)/float64(len(lines)))
	}
	return finish(w)
}
