package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"concord"
	"concord/internal/synth"
)

// TestMain doubles as the shard-worker trampoline: `-shard-backend
// process` re-launches this test binary as a worker (via the
// CONCORD_SHARD_WORKER_CMD fallback) with CONCORD_SHARD_WORKER=1.
func TestMain(m *testing.M) {
	if os.Getenv("CONCORD_SHARD_WORKER") == "1" {
		if err := concord.RunShardWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCheckShardBackendProcess runs `concord check` through the
// process backend and requires the JSON report and the planted
// violation count to match the in-process run, with the distributed
// counters present in -metrics-json.
func TestCheckShardBackendProcess(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("CONCORD_SHARD_WORKER_CMD", exe)

	trainDir := t.TempDir()
	writeDataset(t, trainDir, nil)
	contractsPath := filepath.Join(trainDir, "contracts.json")
	var out bytes.Buffer
	if err := runLearn([]string{
		"-configs", filepath.Join(trainDir, "*.cfg"),
		"-meta", filepath.Join(trainDir, "*.json"),
		"-out", contractsPath,
	}, &out); err != nil {
		t.Fatalf("learn: %v", err)
	}

	badDir := t.TempDir()
	writeDataset(t, badDir, synth.InjectMissingAggregate)
	report := func(extra ...string) (int, string) {
		t.Helper()
		jsonPath := filepath.Join(t.TempDir(), "report.json")
		args := append([]string{
			"-configs", filepath.Join(badDir, "*.cfg"),
			"-meta", filepath.Join(badDir, "*.json"),
			"-contracts", contractsPath,
			"-out", jsonPath,
		}, extra...)
		var buf bytes.Buffer
		n, err := runCheck(args, &buf)
		if err != nil {
			t.Fatalf("check %v: %v", extra, err)
		}
		b, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		// The report wrapper stamps a wall-clock generated_at; byte
		// identity applies to everything else.
		var rep map[string]json.RawMessage
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		delete(rep, "generated_at")
		norm, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return n, string(norm)
	}

	wantN, want := report()
	if wantN == 0 {
		t.Fatal("injected bug not caught by the baseline run")
	}
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	gotN, got := report("-shards", "4", "-shard-backend", "process", "-metrics-json", metricsPath)
	if gotN != wantN || got != want {
		t.Errorf("process backend diverges: %d violations vs %d\n got %s\nwant %s", gotN, wantN, got, want)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	mb, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Counters["shard.dispatches"] == 0 || metrics.Counters["worker.spawns"] == 0 {
		t.Errorf("distributed counters missing from -metrics-json: %v", metrics.Counters)
	}
}
