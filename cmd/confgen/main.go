// Command confgen generates the synthetic configuration datasets used to
// reproduce the paper's evaluation: ten roles (E1, E2, W1-W8) of
// templated device configurations with planted invariants, plus optional
// bug injection for testing concord check.
//
// Usage:
//
//	confgen -role E1 -out ./data/e1                 # write a clean dataset
//	confgen -role E1 -out ./data/e1-bad -mutate drop-line -seed 7
//	confgen -list                                   # show available roles
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"concord/internal/synth"
)

func main() {
	role := flag.String("role", "", "dataset role (E1, E2, W1..W8)")
	out := flag.String("out", "", "output directory")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	list := flag.Bool("list", false, "list available roles")
	mutate := flag.String("mutate", "", "inject a bug into each config: drop-line, swap-adjacent, retype, perturb-value")
	incident := flag.String("incident", "", "inject a §5.5 incident into the first config: aggregate, vlans, ordering")
	seed := flag.Int64("seed", 1, "mutation seed")
	flag.Parse()

	if *list {
		fmt.Println("Role  Network  Syntax  Devices(at scale 1.0)")
		for _, spec := range synth.Roles(1.0) {
			fmt.Printf("%-5s %-8s %-7s %d\n", spec.Name, spec.Network, spec.Syntax, spec.Devices)
		}
		return
	}
	if *role == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "confgen: -role and -out are required (or -list)")
		os.Exit(2)
	}
	spec, ok := synth.RoleByName(*role, *scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "confgen: unknown role %q\n", *role)
		os.Exit(2)
	}
	ds := synth.Generate(spec)
	if err := write(ds, *out, *mutate, *incident, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "confgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d configurations and %d metadata file(s) to %s\n",
		len(ds.Configs), len(ds.Meta), *out)
}

func write(ds *synth.Dataset, dir, mutate, incident string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, f := range ds.Configs {
		text := string(f.Text)
		if mutate != "" {
			m, _, ok := synth.Mutate(text, synth.Mutation(mutate), seed+int64(i))
			if !ok {
				return fmt.Errorf("mutation %q found no site in %s", mutate, f.Name)
			}
			text = m
		}
		if incident != "" && i == 0 {
			var ok bool
			switch incident {
			case "aggregate":
				text, ok = synth.InjectMissingAggregate(text)
			case "vlans":
				text, ok = synth.InjectRogueVlans(text, []int{4901, 4902})
			case "ordering":
				text, ok = synth.InjectVRFOrderBreak(text)
			default:
				return fmt.Errorf("unknown incident %q", incident)
			}
			if !ok {
				return fmt.Errorf("incident %q not injectable into %s", incident, f.Name)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, f.Name), []byte(text), 0o644); err != nil {
			return err
		}
	}
	for _, f := range ds.Meta {
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Text, 0o644); err != nil {
			return err
		}
	}
	return nil
}
