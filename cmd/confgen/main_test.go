package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concord/internal/synth"
)

func TestWriteCleanDataset(t *testing.T) {
	dir := t.TempDir()
	role, _ := synth.RoleByName("E1", 0.5)
	ds := synth.Generate(role)
	if err := write(ds, dir, "", "", 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ds.Configs)+len(ds.Meta) {
		t.Errorf("wrote %d files, want %d", len(entries), len(ds.Configs)+len(ds.Meta))
	}
}

func TestWriteWithMutation(t *testing.T) {
	dir := t.TempDir()
	role, _ := synth.RoleByName("E1", 0.5)
	ds := synth.Generate(role)
	if err := write(ds, dir, "drop-line", "", 7); err != nil {
		t.Fatalf("write with mutation: %v", err)
	}
	// Every config differs from the pristine one.
	for _, f := range ds.Configs {
		data, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) == string(f.Text) {
			t.Errorf("%s unchanged by mutation", f.Name)
		}
	}
}

func TestWriteWithIncident(t *testing.T) {
	dir := t.TempDir()
	role, _ := synth.RoleByName("E1", 0.5)
	ds := synth.Generate(role)
	if err := write(ds, dir, "", "vlans", 1); err != nil {
		t.Fatalf("write with incident: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, ds.Configs[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "vlan 4901") {
		t.Error("incident not injected into the first config")
	}
	if err := write(ds, t.TempDir(), "", "nope", 1); err == nil {
		t.Error("unknown incident accepted")
	}
}
