package concord

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const miniConfig = `hostname DEV%d
!
interface Loopback0
   ip address 10.14.%d.34
!
ip prefix-list loopback
   seq 10 permit 10.14.%d.34/32
   seq 20 permit 0.0.0.0/0
!
router bgp %d
   router-id 10.14.%d.34
`

func miniCorpus(t *testing.T, n int) []Source {
	t.Helper()
	var out []Source
	for d := 1; d <= n; d++ {
		text := strings.ReplaceAll(miniConfig, "%d", "")
		_ = text
		out = append(out, Source{
			Name: filepath.Base("dev" + string(rune('0'+d)) + ".cfg"),
			Text: []byte(render(miniConfig, d)),
		})
	}
	return out
}

func render(tmpl string, d int) string {
	out := tmpl
	for strings.Contains(out, "%d") {
		out = strings.Replace(out, "%d", itoa(d), 1)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestPublicLearnCheck(t *testing.T) {
	training := miniCorpus(t, 8)
	lr, err := Learn(training, nil, DefaultOptions())
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if lr.Set.Len() == 0 {
		t.Fatal("no contracts learned")
	}
	// The clean corpus checks clean.
	cr, err := Check(lr.Set, training, nil, DefaultOptions())
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(cr.Violations) != 0 {
		t.Fatalf("clean corpus violated: %+v", cr.Violations)
	}
	// A broken router-id (no longer the loopback) is caught.
	broken := strings.Replace(render(miniConfig, 9), "router-id 10.14.9.34", "router-id 10.14.99.99", 1)
	cr, err = Check(lr.Set, []Source{{Name: "bad.cfg", Text: []byte(broken)}}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Violations) == 0 {
		t.Error("broken router-id not caught")
	}
}

func TestContractSetJSONPublic(t *testing.T) {
	lr, err := Learn(miniCorpus(t, 8), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(lr.Set)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ContractSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Len() != lr.Set.Len() {
		t.Errorf("round trip: %d != %d", back.Len(), lr.Set.Len())
	}
}

func TestLoadGlob(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.cfg", "a.cfg", "skip.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("hostname X1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srcs, err := LoadGlob(filepath.Join(dir, "*.cfg"))
	if err != nil {
		t.Fatalf("LoadGlob: %v", err)
	}
	if len(srcs) != 2 || srcs[0].Name != "a.cfg" || srcs[1].Name != "b.cfg" {
		t.Errorf("srcs = %+v", srcs)
	}
	if _, err := LoadGlob("[bad"); err == nil {
		t.Error("bad glob accepted")
	}
	// A pattern matching nothing is an error, not a silent empty corpus.
	if _, err := LoadGlob(filepath.Join(dir, "*.nope")); !errors.Is(err, ErrNoSources) {
		t.Errorf("LoadGlob(no match) = %v, want ErrNoSources", err)
	}
	if _, _, err := LoadGlobLenient(filepath.Join(dir, "*.nope")); !errors.Is(err, ErrNoSources) {
		t.Errorf("LoadGlobLenient(no match) = %v, want ErrNoSources", err)
	}
}

// TestLoadGlobKeepsDirectoryPrefix is the regression test for the name
// collision where r1.cfg in two directories collapsed to one name: the
// loader must keep the path relative to the pattern's fixed prefix.
func TestLoadGlobKeepsDirectoryPrefix(t *testing.T) {
	dir := t.TempDir()
	for _, sub := range []string{"a", "b"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sub, "r1.cfg"), []byte("hostname "+sub+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srcs, err := LoadGlob(filepath.Join(dir, "*", "*.cfg"))
	if err != nil {
		t.Fatalf("LoadGlob: %v", err)
	}
	if len(srcs) != 2 {
		t.Fatalf("got %d sources, want 2", len(srcs))
	}
	if srcs[0].Name != "a/r1.cfg" || srcs[1].Name != "b/r1.cfg" {
		t.Errorf("names = %q, %q; want a/r1.cfg, b/r1.cfg", srcs[0].Name, srcs[1].Name)
	}
	if srcs[0].Name == srcs[1].Name {
		t.Error("distinct files collapsed to one source name")
	}
}

func TestUserTokensThroughPublicAPI(t *testing.T) {
	opts := DefaultOptions()
	opts.UserTokens = []TokenSpec{{Name: "iface", Pattern: `et-[0-9]+(?:/[0-9]+)*`}}
	var training []Source
	for d := 1; d <= 8; d++ {
		text := "set interfaces et-0/0/1 mtu 9100\nhostname R" + itoa(d) + "\n"
		training = append(training, Source{Name: "r" + itoa(d), Text: []byte(text)})
	}
	lr, err := Learn(training, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range lr.Set.Contracts {
		if strings.Contains(c.String(), ":iface]") {
			found = true
		}
	}
	if !found {
		t.Error("user token type did not reach learned contracts")
	}
}

func TestCategoriesConstants(t *testing.T) {
	cats := []Category{CatPresent, CatOrdering, CatType, CatSequence, CatUnique, CatRelation}
	seen := map[Category]bool{}
	for _, c := range cats {
		if seen[c] {
			t.Errorf("duplicate category %s", c)
		}
		seen[c] = true
	}
	if len(DefaultTransforms()) == 0 {
		t.Error("no default transforms")
	}
}

func TestExtraTransformsThroughPublicAPI(t *testing.T) {
	// A custom "dot" transform replaces the dash of a site code with a
	// dot so that "site-17" relates to an IP octet pair — a relation the
	// built-in registry cannot express. Here we use a simpler variant:
	// doubling numbers, so that "timer 34" == double("slot 17").
	opts := DefaultOptions()
	opts.ExtraTransforms = []Transform{{
		Name: "double",
		Apply: func(v Value) (Value, bool) {
			n, ok := v.(Num)
			if !ok {
				return nil, false
			}
			i, ok := n.Int64()
			if !ok {
				return nil, false
			}
			return Str(itoa(int(2 * i))), true
		},
	}}
	var training []Source
	for d := 1; d <= 8; d++ {
		text := "slot " + itoa(1000+d) + "\ntimer " + itoa(2*(1000+d)) + "\n"
		training = append(training, Source{Name: "r" + itoa(d), Text: []byte(text)})
	}
	lr, err := Learn(training, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range lr.Set.Contracts {
		if strings.Contains(c.String(), "double(") {
			found = true
		}
	}
	if !found {
		t.Fatal("custom transform did not produce a contract")
	}
	// The custom transform also evaluates at check time.
	bad := Source{Name: "bad", Text: []byte("slot 1009\ntimer 999\n")}
	cr, err := Check(lr.Set, []Source{bad}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, v := range cr.Violations {
		if strings.Contains(v.Contract, "double(") {
			caught = true
		}
	}
	if !caught {
		t.Error("custom-transform contract not enforced at check time")
	}
	// Duplicate transform names are rejected.
	dup := DefaultOptions()
	dup.ExtraTransforms = []Transform{{Name: "hex", Apply: func(v Value) (Value, bool) { return v, true }}}
	if _, err := Learn(nil, nil, dup); err == nil {
		t.Error("duplicate transform name accepted")
	}
}

// TestCustomRelationThroughPublicAPI defines a "peer31" relation — two
// IPv4 addresses are /31 point-to-point peers when they differ only in
// the last bit — and verifies Concord learns and enforces it end to end.
// This exercises §4's pluggable relation interface.
func TestCustomRelationThroughPublicAPI(t *testing.T) {
	peer31 := func(lhs, witness Value) bool {
		a, ok1 := lhs.(IP)
		b, ok2 := witness.(IP)
		if !ok1 || !ok2 || a.Is6() || b.Is6() {
			return false
		}
		ab, bb := a.Bytes(), b.Bytes()
		for i := 0; i < 3; i++ {
			if ab[i] != bb[i] {
				return false
			}
		}
		return ab[3]^bb[3] == 1
	}
	opts := DefaultOptions()
	opts.ExtraRelations = []RelationDefinition{{
		Rel:   "peer31",
		Holds: peer31,
		NewIndex: func() RelationIndex {
			return NewFuncIndex("peer31", peer31)
		},
	}}

	var training []Source
	for d := 1; d <= 8; d++ {
		text := "interface Ethernet1\n   ip address 10.7." + itoa(d) + ".2\n!\n" +
			"router bgp 65000\n   neighbor 10.7." + itoa(d) + ".3 remote-as 65001\n"
		training = append(training, Source{Name: "r" + itoa(d), Text: []byte(text)})
	}
	lr, err := Learn(training, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range lr.Set.Contracts {
		if strings.Contains(c.String(), "peer31(") {
			found = true
		}
	}
	if !found {
		t.Fatal("custom relation did not produce a contract")
	}

	// A neighbor that is not the interface's /31 peer violates it.
	bad := Source{Name: "bad", Text: []byte(
		"interface Ethernet1\n   ip address 10.7.9.2\n!\n" +
			"router bgp 65000\n   neighbor 10.7.99.77 remote-as 65001\n")}
	cr, err := Check(lr.Set, []Source{bad}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, v := range cr.Violations {
		if strings.Contains(v.Contract, "peer31(") {
			caught = true
		}
	}
	if !caught {
		t.Error("custom relation contract not enforced at check time")
	}

	// Invalid definitions are rejected.
	for _, badDef := range []RelationDefinition{
		{Rel: "", Holds: peer31, NewIndex: func() RelationIndex { return NewFuncIndex("x", peer31) }},
		{Rel: "equals", Holds: peer31, NewIndex: func() RelationIndex { return NewFuncIndex("x", peer31) }},
		{Rel: "nofn"},
	} {
		o := DefaultOptions()
		o.ExtraRelations = []RelationDefinition{badDef}
		if _, err := Learn(nil, nil, o); err == nil {
			t.Errorf("invalid definition accepted: %+v", badDef.Rel)
		}
	}
}

// TestLoadGlobCollectsAllErrors asserts a failed load reports every
// unreadable file, not just the first. Directories matching the glob
// stand in for unreadable files (reads fail with EISDIR even as root).
func TestLoadGlobCollectsAllErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ok.cfg"), []byte("hostname X1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"bad1.cfg", "bad2.cfg"} {
		if err := os.MkdirAll(filepath.Join(dir, bad), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	srcs, err := LoadGlob(filepath.Join(dir, "*.cfg"))
	if err == nil {
		t.Fatal("LoadGlob succeeded with unreadable entries")
	}
	if srcs != nil {
		t.Errorf("failed load still returned %d sources", len(srcs))
	}
	for _, bad := range []string{"bad1.cfg", "bad2.cfg"} {
		if !strings.Contains(err.Error(), bad) {
			t.Errorf("error does not mention %s: %v", bad, err)
		}
	}
}

// TestLoadGlobLenient asserts degraded loading keeps the readable
// files and reports the rest as load-stage diagnostics.
func TestLoadGlobLenient(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.cfg", "b.cfg"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("hostname X1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "bad.cfg"), 0o755); err != nil {
		t.Fatal(err)
	}
	srcs, ds, err := LoadGlobLenient(filepath.Join(dir, "*.cfg"))
	if err != nil {
		t.Fatalf("LoadGlobLenient: %v", err)
	}
	if len(srcs) != 2 || srcs[0].Name != "a.cfg" || srcs[1].Name != "b.cfg" {
		t.Errorf("survivors = %+v", srcs)
	}
	if len(ds) != 1 {
		t.Fatalf("diagnostics = %+v, want 1", ds)
	}
	d := ds[0]
	if d.Severity != SevError || d.Stage != "load" || !strings.Contains(d.Source, "bad.cfg") || d.Cause == nil {
		t.Errorf("diagnostic = %+v", d)
	}
	if _, _, err := LoadGlobLenient("[bad"); err == nil {
		t.Error("bad glob accepted")
	}
}

// TestLoadGlobParallelDeterministic asserts the worker-pool loader
// preserves the sequential contract at scale: sources sorted by path,
// contents matched to names, and lenient diagnostics in path order
// regardless of scheduling.
func TestLoadGlobParallelDeterministic(t *testing.T) {
	dir := t.TempDir()
	const n = 200
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%03d.cfg", i)
		text := fmt.Sprintf("hostname R%03d\n", i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave unreadable entries (directories read as EISDIR).
	for _, bad := range []string{"r050x.cfg", "r150x.cfg"} {
		if err := os.MkdirAll(filepath.Join(dir, bad), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		srcs, ds, err := LoadGlobLenient(filepath.Join(dir, "*.cfg"))
		if err != nil {
			t.Fatal(err)
		}
		if len(srcs) != n {
			t.Fatalf("round %d: %d sources, want %d", round, len(srcs), n)
		}
		for i, s := range srcs {
			wantName := fmt.Sprintf("r%03d.cfg", i)
			// The two bad entries sort inside the sequence but carry no
			// sources; survivors must still be in sorted order with the
			// right content for their name.
			if s.Name != wantName {
				t.Fatalf("round %d: source %d is %q, want %q", round, i, s.Name, wantName)
			}
			if want := fmt.Sprintf("hostname R%03d\n", i); string(s.Text) != want {
				t.Fatalf("round %d: %s has content %q, want %q", round, s.Name, s.Text, want)
			}
		}
		if len(ds) != 2 {
			t.Fatalf("round %d: diagnostics = %+v, want 2", round, ds)
		}
		if !strings.Contains(ds[0].Source, "r050x.cfg") || !strings.Contains(ds[1].Source, "r150x.cfg") {
			t.Errorf("round %d: diagnostics out of path order: %+v", round, ds)
		}
	}
}
