// The wan example runs Concord over two wide-area network roles with
// different vendor dialects — a Cisco-style hierarchical role (W1) and a
// Juniper-style flat "set" role (W8) — demonstrating vendor-agnostic
// learning, user-defined lexer token types, contract minimization, and
// the Table 8 style of intuitive learned contracts (perimeter filter
// symmetry, bogon prefix subsumption, IPv4/IPv6 policy pairing, unique
// interface addresses).
//
// Run with: go run ./examples/wan
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"concord"
	"concord/internal/synth"
)

func main() {
	for _, roleName := range []string{"W1", "W8"} {
		role, _ := synth.RoleByName(roleName, 0.4)
		ds := synth.Generate(role)
		var srcs []concord.Source
		for _, f := range ds.Configs {
			srcs = append(srcs, concord.Source{Name: f.Name, Text: f.Text})
		}

		opts := concord.DefaultOptions()
		// A user token type keeps Juniper interface names as opaque
		// identifiers instead of digit soup (§3.2's extensible lexer).
		opts.UserTokens = []concord.TokenSpec{
			{Name: "iface", Pattern: `(?:et|xe|ge)-[0-9]+/[0-9]+/[0-9]+`},
		}
		// The production deployment disables ordering contracts (§5.4).
		opts.Categories = []concord.Category{
			concord.CatPresent, concord.CatType, concord.CatSequence,
			concord.CatUnique, concord.CatRelation,
		}

		result, err := concord.Learn(srcs, nil, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%s syntax): %d devices, %d lines, %d patterns ===\n",
			roleName, role.Syntax, result.Stats.Configs, result.Stats.Lines, result.Stats.Patterns)
		fmt.Printf("learned %d contracts; minimization reduced relational contracts %d -> %d (%.1fx)\n",
			result.Set.Len(), result.Minimization.Before, result.Minimization.After,
			result.Minimization.ReductionFactor())

		// Show Table 8-style intuitive contracts with their descriptions
		// from the ground-truth manifest.
		type shown struct{ desc, text string }
		var picks []shown
		seen := map[string]bool{}
		for _, c := range result.Set.Contracts {
			desc := ds.Truth.Describe(c)
			if desc == "" || seen[desc] {
				continue
			}
			seen[desc] = true
			picks = append(picks, shown{desc: desc, text: c.String()})
		}
		sort.Slice(picks, func(i, j int) bool { return picks[i].desc < picks[j].desc })
		if len(picks) > 4 {
			picks = picks[:4]
		}
		fmt.Println("\nexample contracts:")
		for _, p := range picks {
			fmt.Printf("  # %s\n", p.desc)
			for _, line := range strings.Split(p.text, "\n") {
				fmt.Printf("    %s\n", line)
			}
		}

		// Check a config with a duplicated interface address (violating
		// the role-wide uniqueness contract of Table 8).
		victim := string(srcs[0].Text)
		donor := string(srcs[1].Text)
		dupAddr := extractAddr(donor)
		bad := strings.Replace(victim, extractAddr(victim), dupAddr, 1)
		report, err := concord.Check(result.Set, []concord.Source{
			{Name: srcs[0].Name, Text: []byte(bad)},
			{Name: srcs[1].Name, Text: []byte(donor)},
		}, nil, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nduplicating an interface address across devices yields %d violation(s):\n",
			len(report.Violations))
		for i, v := range report.Violations {
			if i >= 3 {
				break
			}
			fmt.Printf("  %s [%s] %s\n", v.Location(), v.Category, v.Detail)
		}
		fmt.Println()
	}
}

// extractAddr pulls the first /31 interface address from a config.
func extractAddr(text string) string {
	for _, l := range strings.Split(text, "\n") {
		if i := strings.Index(l, "address 10."); i >= 0 && strings.HasSuffix(l, "/31") {
			return strings.TrimSuffix(l[i+len("address "):], "/31")
		}
		if i := strings.Index(l, "ip address 10."); i >= 0 && strings.HasSuffix(l, "/31") {
			return strings.TrimSuffix(l[i+len("ip address "):], "/31")
		}
	}
	return ""
}
