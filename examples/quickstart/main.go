// The quickstart example walks through Figure 1 of the paper: Concord
// learns contracts from a handful of Arista-style edge switch
// configurations — including the relational contracts tying port-channel
// numbers to MAC segments, loopback addresses to prefix lists, and vlan
// ids to route distinguishers — then catches planted bugs in a modified
// configuration.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"concord"
)

// device renders one training configuration in the style of the paper's
// Figure 1 (values vary per device so relationships are learnable).
func device(d int) string {
	pc1, pc2 := 11+d, 110+d
	vlan := 240 + d
	return fmt.Sprintf(`hostname DEV%d
!
interface Loopback0
   ip address 10.14.%d.34
!
interface Port-Channel%d
   evpn ether-segment
      route-target import 00:00:0c:d3:00:%02x
!
interface Port-Channel%d
   evpn ether-segment
      route-target import 00:00:0c:d3:00:%02x
!
ip prefix-list loopback
   seq 10 permit 10.14.%d.34/32
   seq 20 permit 0.0.0.0/0
!
router bgp %d
   maximum-paths 64 ecmp 64
   vlan %d
      rd 10.14.%d.117:10%d
`, d, d, pc1, pc1, pc2, pc2, d, 65000+d, vlan, d, vlan)
}

func main() {
	// Learn from eight known-good configurations.
	var training []concord.Source
	for d := 1; d <= 8; d++ {
		training = append(training, concord.Source{
			Name: fmt.Sprintf("dev%d.cfg", d),
			Text: []byte(device(d)),
		})
	}
	result, err := concord.Learn(training, nil, concord.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Learned %d contracts from %d configurations (%d lines)\n\n",
		result.Set.Len(), result.Stats.Configs, result.Stats.Lines)

	fmt.Println("A few of the learned contracts:")
	shown := 0
	for _, c := range result.Set.Contracts {
		if c.Category() != concord.CatRelation || shown >= 3 {
			continue
		}
		shown++
		for _, line := range strings.Split(c.String(), "\n") {
			fmt.Println("   ", line)
		}
		fmt.Println()
	}

	// Now break a new device three ways: wrong MAC segment for the
	// port channel, a loopback missing from the prefix list, and an rd
	// that no longer ends with the vlan id.
	bad := device(9)
	bad = strings.Replace(bad, "00:00:0c:d3:00:14", "00:00:0c:d3:00:ff", 1) // pc 20 -> 0x14
	bad = strings.Replace(bad, "seq 10 permit 10.14.9.34/32", "seq 10 permit 10.14.77.0/24", 1)
	bad = strings.Replace(bad, "seq 20 permit 0.0.0.0/0", "seq 20 permit 10.14.78.0/24", 1)
	bad = strings.Replace(bad, "rd 10.14.9.117:10249", "rd 10.14.9.117:10999", 1)

	report, err := concord.Check(result.Set, []concord.Source{
		{Name: "dev9.cfg", Text: []byte(bad)},
	}, nil, concord.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Checking the modified configuration found %d violation(s):\n", len(report.Violations))
	for _, v := range report.Violations {
		fmt.Printf("   %s [%s] %s\n", v.Location(), v.Category, v.Detail)
	}
	fmt.Printf("\nCoverage: %.1f%% of the configuration's lines are protected by contracts\n",
		report.Coverage.Percent())
}
