// The edgedc example simulates the paper's production deployment
// (Figure 10): Concord gates the CI/CD pipeline of a configuration
// management service for mobile edge datacenters. The pipeline runs the
// service pre-change and post-change, learns contracts from the
// pre-change configurations, and checks the post-change configurations —
// blocking the pull request when contracts are violated.
//
// The example replays the paper's three §5.5 incidents as "post-change"
// regressions: missing route aggregation, rogue vlans creating a MAC
// broadcast loop, and erroneous VRF configuration breaking line order.
//
// Run with: go run ./examples/edgedc
package main

import (
	"fmt"
	"log"
	"strings"

	"concord"
	"concord/internal/synth"
)

func main() {
	// "Service v1" generates the pre-change configurations: the E1 edge
	// role plus its network-function policy metadata.
	role, _ := synth.RoleByName("E1", 1.0)
	ds := synth.Generate(role)
	var preChange, metadata []concord.Source
	for _, f := range ds.Configs {
		preChange = append(preChange, concord.Source{Name: f.Name, Text: f.Text})
	}
	for _, f := range ds.Meta {
		metadata = append(metadata, concord.Source{Name: f.Name, Text: f.Text})
	}

	fmt.Printf("CI/CD pipeline: learning contracts from %d pre-change configurations...\n", len(preChange))
	learned, err := concord.Learn(preChange, metadata, concord.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d contracts learned (minimization: %d -> %d relational)\n\n",
		learned.Set.Len(), learned.Minimization.Before, learned.Minimization.After)

	// Each pull request produces post-change configurations; the three
	// incidents below are the regressions the paper replayed.
	victim := string(preChange[0].Text)
	pullRequests := []struct {
		title  string
		mutate func(string) (string, bool)
	}{
		{
			"PR-1041: struct refactor (drops BGP route aggregation)",
			synth.InjectMissingAggregate,
		},
		{
			"PR-1105: new low-cost SKU (leaks vlans into existing SKU)",
			func(s string) (string, bool) { return synth.InjectRogueVlans(s, []int{4901, 4902}) },
		},
		{
			"PR-1152: VRF push fix (inserts config mid-block)",
			synth.InjectVRFOrderBreak,
		},
		{
			"PR-1200: comment-only change (no regression)",
			func(s string) (string, bool) { return s, true },
		},
	}

	for _, pr := range pullRequests {
		postChange, ok := pr.mutate(victim)
		if !ok {
			log.Fatalf("injection failed for %s", pr.title)
		}
		report, err := concord.Check(learned.Set, []concord.Source{
			{Name: "post-change.cfg", Text: []byte(postChange)},
		}, metadata, concord.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		// Ordering contracts are noisy on generated configs (§5.4); the
		// production deployment keeps them off. We surface them last and
		// gate only on the rest.
		blocking := 0
		for _, v := range report.Violations {
			if v.Category != concord.CatOrdering {
				blocking++
			}
		}
		// Incident 3 is only caught by ordering contracts — the paper
		// notes exactly this tension, so this pipeline treats ordering
		// violations in the bgp block as blocking too.
		for _, v := range report.Violations {
			if v.Category == concord.CatOrdering && strings.Contains(v.Contract, "redistribute connected") {
				blocking++
			}
		}
		fmt.Println(pr.title)
		if blocking == 0 {
			fmt.Println("  ✓ contracts hold — merge allowed")
		} else {
			fmt.Printf("  ✗ BLOCKED: %d contract violation(s); first few:\n", blocking)
			shown := 0
			for _, v := range report.Violations {
				if shown >= 3 {
					break
				}
				if v.Category == concord.CatOrdering && !strings.Contains(v.Contract, "redistribute connected") {
					continue
				}
				shown++
				fmt.Printf("    %s [%s] %s\n", v.Location(), v.Category, v.Detail)
			}
		}
		fmt.Println()
	}
}
