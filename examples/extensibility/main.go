// The extensibility example exercises every plug-in surface §4 of the
// paper describes: a user-defined lexer token type, a custom data
// transformation, a custom relation with its own witness index, and
// YAML metadata incorporated into learning.
//
// The scenario: a small fabric where each device's BGP neighbor must be
// the /31 point-to-point peer of one of its interface addresses, rack
// names follow a site-coded scheme declared in YAML metadata, and
// interface names use a vendor syntax worth keeping opaque.
//
// Run with: go run ./examples/extensibility
package main

import (
	"fmt"
	"log"
	"strings"

	"concord"
)

// peer31 relates two IPv4 addresses that differ only in the final bit —
// the two ends of a /31 point-to-point link.
func peer31(lhs, witness concord.Value) bool {
	a, ok1 := lhs.(concord.IP)
	b, ok2 := witness.(concord.IP)
	if !ok1 || !ok2 || a.Is6() || b.Is6() {
		return false
	}
	ab, bb := a.Bytes(), b.Bytes()
	return ab[0] == bb[0] && ab[1] == bb[1] && ab[2] == bb[2] && ab[3]^bb[3] == 1
}

func device(d int) string {
	member := 30 + d
	return fmt.Sprintf(`hostname FAB-R%d
!
chassis member %d
!
interface xe-0/0/1
   ip address 10.31.%d.2
!
router bgp %d
   neighbor 10.31.%d.3 remote-as 65020
!
rack RACK-%d
`, 100+d, member, d, 65100+d, d, member*100+9)
}

func main() {
	opts := concord.DefaultOptions()

	// 1. User token type: vendor interface names stay opaque instead of
	//    dissolving into digit soup.
	opts.UserTokens = []concord.TokenSpec{
		{Name: "iface", Pattern: `(?:xe|et|ge)-[0-9]+/[0-9]+/[0-9]+`},
	}

	// 2. Custom transform: the rack number encodes the chassis member id
	//    in its hundreds (RACK-3109 belongs to member 31).
	opts.ExtraTransforms = []concord.Transform{{
		Name: "hundreds",
		Apply: func(v concord.Value) (concord.Value, bool) {
			n, ok := v.(concord.Num)
			if !ok {
				return nil, false
			}
			i, ok := n.Int64()
			if !ok || i < 100 {
				return nil, false
			}
			return concord.Str(fmt.Sprint(i / 100)), true
		},
	}}

	// 3. Custom relation with a scalable witness index: /31 peers share
	//    their upper 31 bits, so bucketing by them makes lookups O(1).
	linkKey := func(v concord.Value) (string, bool) {
		ip, ok := v.(concord.IP)
		if !ok || ip.Is6() {
			return "", false
		}
		b := ip.Bytes()
		return fmt.Sprintf("%d.%d.%d.%d", b[0], b[1], b[2], b[3]>>1), true
	}
	opts.ExtraRelations = []concord.RelationDefinition{{
		Rel:   "peer31",
		Holds: peer31,
		NewIndex: func() concord.RelationIndex {
			return concord.NewKeyedIndex("peer31", linkKey, peer31)
		},
	}}

	// 4. YAML metadata: the fabric plan declares the site code.
	meta := []concord.Source{{Name: "plan.yaml", Text: []byte(
		"fabric:\n  siteCode: 7\n  vendor: mixed\n")}}

	var training []concord.Source
	for d := 1; d <= 8; d++ {
		training = append(training, concord.Source{
			Name: fmt.Sprintf("r%d.cfg", d), Text: []byte(device(d)),
		})
	}
	lr, err := concord.Learn(training, meta, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d contracts; the extensibility-driven ones:\n\n", lr.Set.Len())
	for _, c := range lr.Set.Contracts {
		s := c.String()
		if strings.Contains(s, "peer31(") || strings.Contains(s, "hundreds(") ||
			(strings.Contains(s, ":iface]") && c.Category() == concord.CatPresent) {
			for _, line := range strings.Split(s, "\n") {
				fmt.Println("   ", line)
			}
			fmt.Println()
		}
	}

	// Break the /31 peering and the rack coding on a new device.
	bad := strings.Replace(device(9), "neighbor 10.31.9.3", "neighbor 10.31.77.9", 1)
	bad = strings.Replace(bad, "rack RACK-3909", "rack RACK-7709", 1)
	report, err := concord.Check(lr.Set, []concord.Source{{Name: "r9.cfg", Text: []byte(bad)}}, meta, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations in the broken configuration (%d total):\n", len(report.Violations))
	for _, v := range report.Violations {
		if strings.Contains(v.Contract, "peer31(") || strings.Contains(v.Contract, "hundreds(") {
			fmt.Printf("   %s [%s] %s\n", v.Location(), v.Category, v.Detail)
		}
	}
}
