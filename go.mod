module concord

go 1.22
