package concord_test

import (
	"fmt"
	"strings"

	"concord"
)

// device renders a deterministic training configuration.
func device(d int) string {
	return fmt.Sprintf(`hostname DEV%d
!
interface Loopback0
   ip address 10.20.%d.1
!
router bgp %d
   router-id 10.20.%d.1
`, d, d, 65000+d, d)
}

// ExampleLearn shows the one-call learning API: eight known-good
// configurations yield contracts including the router-id ↔ loopback
// equality.
func ExampleLearn() {
	var training []concord.Source
	for d := 1; d <= 8; d++ {
		training = append(training, concord.Source{
			Name: fmt.Sprintf("dev%d.cfg", d),
			Text: []byte(device(d)),
		})
	}
	result, err := concord.Learn(training, nil, concord.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, c := range result.Set.Contracts {
		if c.Category() == concord.CatRelation &&
			strings.Contains(c.String(), "router-id") &&
			strings.Contains(c.String(), "Loopback") {
			fmt.Println(strings.ReplaceAll(c.String(), "\n", " "))
			return
		}
	}
	// Output:
	// forall l1 ~ /interface Loopback[num]/ip address [a:ip4] exists l2 ~ /router bgp [num]/router-id [a:ip4] equals(l1.a, l2.a)
}

// ExampleCheck shows violation reporting: a device whose router id no
// longer matches its loopback is flagged with a line number.
func ExampleCheck() {
	var training []concord.Source
	for d := 1; d <= 8; d++ {
		training = append(training, concord.Source{
			Name: fmt.Sprintf("dev%d.cfg", d),
			Text: []byte(device(d)),
		})
	}
	result, err := concord.Learn(training, nil, concord.DefaultOptions())
	if err != nil {
		panic(err)
	}
	broken := strings.Replace(device(9), "router-id 10.20.9.1", "router-id 10.99.0.1", 1)
	report, err := concord.Check(result.Set, []concord.Source{
		{Name: "dev9.cfg", Text: []byte(broken)},
	}, nil, concord.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, v := range report.Violations {
		fmt.Printf("%s:%d [%s]\n", v.File, v.Line, v.Category)
	}
	// Output:
	// dev9.cfg:4 [relation]
	// dev9.cfg:7 [relation]
}
