package concord

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus micro-benchmarks of the core pipeline stages.
// Each experiment bench builds a fresh harness runner so the measured
// work includes dataset generation, learning, and checking.
//
// Dataset sizes scale with CONCORD_BENCH_SCALE (default 0.1); run the
// full evaluation with cmd/concord-experiments -scale 1.0 instead of
// cranking the benchmarks.

import (
	"context"
	"io"
	"os"
	"strconv"
	"testing"
	"time"

	"concord/internal/contracts"
	"concord/internal/core"
	"concord/internal/format"
	"concord/internal/harness"
	"concord/internal/lexer"
	"concord/internal/minimize"
	"concord/internal/mining"
	"concord/internal/synth"
)

// benchScale reads the dataset scale for benchmarks.
func benchScale() float64 {
	if s := os.Getenv("CONCORD_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.1
}

// benchExperiment times a harness experiment end to end.
func benchExperiment(b *testing.B, f func(r *harness.Runner) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchScale())
		if err := f(r); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRoles keeps the per-iteration role set small; the experiments CLI
// covers all ten roles.
var benchRoles = []string{"E1", "E2", "W8"}

func BenchmarkTable3_DatasetOverview(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		return r.Table3(io.Discard, benchRoles)
	})
}

func BenchmarkFigure6_Scaling(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		_, err := r.Figure6(io.Discard, "E2", 4)
		return err
	})
}

func BenchmarkTable4_ContractsAndCoverage(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		return r.Table4(io.Discard, benchRoles)
	})
}

func BenchmarkTable5_CoverageByCategory(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		return r.Table5(io.Discard, benchRoles)
	})
}

func BenchmarkFigure7_Ablation(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		_, err := r.Figure7(io.Discard, []string{"E1", "W8"})
		return err
	})
}

func BenchmarkFigure8_Minimization(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		_, err := r.Figure8(io.Discard, benchRoles)
		return err
	})
}

func BenchmarkTable6_SampleSizes(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		_, err := r.Table6(io.Discard)
		return err
	})
}

func BenchmarkFigure9_ScoreCDF(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		_, err := r.Figure9(io.Discard)
		return err
	})
}

func BenchmarkTable7_Precision(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		_, err := r.Table7(io.Discard)
		return err
	})
}

func BenchmarkTable8_Examples(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		return r.Table8(io.Discard, 5)
	})
}

// BenchmarkOpt_BruteForceVsIndexed is the §5.2 ablation: indexed vs.
// naive relational mining on the same corpus. The slowdown factor is
// reported as a custom metric; at realistic sizes the brute force does
// not terminate (run cmd/concord-experiments -experiment optimization).
func BenchmarkOpt_BruteForceVsIndexed(b *testing.B) {
	role, _ := synth.RoleByName("E1", 0.5)
	ds := synth.Generate(role)
	var srcs []core.Source
	for _, f := range ds.Configs {
		srcs = append(srcs, core.Source{Name: f.Name, Text: f.Text})
	}
	eng := core.MustNew(core.DefaultOptions())
	cfgs, _ := eng.Process(srcs, nil)
	m := mining.New(mining.Options{
		Categories: map[contracts.Category]bool{contracts.CatRelation: true},
	})
	var indexed, brute time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		m.Mine(cfgs)
		indexed += time.Since(start)
		start = time.Now()
		if _, err := m.MineRelationalBruteForce(context.Background(), cfgs); err != nil {
			b.Fatal(err)
		}
		brute += time.Since(start)
	}
	if indexed > 0 {
		b.ReportMetric(brute.Seconds()/indexed.Seconds(), "brute/indexed")
	}
}

func BenchmarkIncidentReplays(b *testing.B) {
	benchExperiment(b, func(r *harness.Runner) error {
		_, err := r.Incidents(io.Discard)
		return err
	})
}

// --- micro-benchmarks of the pipeline stages ---

func benchCorpus(b *testing.B, roleName string) ([]core.Source, []core.Source) {
	b.Helper()
	role, ok := synth.RoleByName(roleName, benchScale())
	if !ok {
		b.Fatalf("role %s", roleName)
	}
	ds := synth.Generate(role)
	var srcs, meta []core.Source
	for _, f := range ds.Configs {
		srcs = append(srcs, core.Source{Name: f.Name, Text: f.Text})
	}
	for _, f := range ds.Meta {
		meta = append(meta, core.Source{Name: f.Name, Text: f.Text})
	}
	return srcs, meta
}

func benchmarkLearn(b *testing.B, roleName string) {
	srcs, meta := benchCorpus(b, roleName)
	eng := core.MustNew(core.DefaultOptions())
	lines := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr, err := eng.Learn(srcs, meta)
		if err != nil {
			b.Fatal(err)
		}
		lines = lr.Stats.Lines
	}
	b.ReportMetric(float64(lines), "lines")
}

func BenchmarkLearn_EdgeIndent(b *testing.B) { benchmarkLearn(b, "E2") }
func BenchmarkLearn_WANIndent(b *testing.B)  { benchmarkLearn(b, "W1") }
func BenchmarkLearn_WANFlat(b *testing.B)    { benchmarkLearn(b, "W8") }

func benchmarkCheck(b *testing.B, roleName string) {
	srcs, meta := benchCorpus(b, roleName)
	eng := core.MustNew(core.DefaultOptions())
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Check(lr.Set, srcs, meta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheck_EdgeIndent(b *testing.B) { benchmarkCheck(b, "E2") }
func BenchmarkCheck_WANFlat(b *testing.B)    { benchmarkCheck(b, "W8") }

func BenchmarkLexLine(b *testing.B) {
	lx := lexer.MustNew()
	lines := []string{
		"ip address 10.14.14.34",
		"seq 10 permit 10.14.14.34/32",
		"route-target import 00:00:0c:d3:00:6e",
		"rd 10.14.14.117:10251",
		"maximum-paths 64 ecmp 64",
		"evpn ether-segment",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lx.Lex(lines[i%len(lines)])
	}
}

func BenchmarkContextEmbedding(b *testing.B) {
	role, _ := synth.RoleByName("E1", 0.5)
	text := synth.Generate(role).Configs[0].Text
	lx := lexer.MustNew()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		format.Process("bench", text, lx, format.Options{Embed: true})
	}
}

func BenchmarkApriori_Baseline(b *testing.B) {
	srcs, meta := benchCorpus(b, "E1")
	eng := core.MustNew(core.DefaultOptions())
	cfgs, _ := eng.Process(srcs, meta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.Apriori(cfgs, mining.AprioriOptions{MinSupport: 0.9, MinConfidence: 0.9, MaxSetSize: 2})
	}
}

// BenchmarkMinimization isolates §3.6 on a quadratic equality clique.
func BenchmarkMinimization(b *testing.B) {
	srcs, meta := benchCorpus(b, "E2")
	opts := core.DefaultOptions()
	opts.Minimize = false
	eng := core.MustNew(opts)
	lr, err := eng.Learn(srcs, meta)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := &contracts.Set{Contracts: append([]contracts.Contract{}, lr.Set.Contracts...)}
		if out, _ := minimize.Set(set); out.Len() > set.Len() {
			b.Fatal("minimization grew the set")
		}
	}
}

// benchmarkCheckEngine times the check hot path with the engine pinned
// to one mode: LinearScan=true is the pre-PR per-contract scan,
// LinearScan=false the compiled (indexed) engine. Contracts are learned
// once from a subset so the timed loop measures checking only; the
// speedup between the two benchmarks is tracked in BENCH_PR7.json
// (regenerate with `make bench`).
func benchmarkCheckEngine(b *testing.B, roleName string, linear bool) {
	srcs, meta := benchCorpus(b, roleName)
	eng := core.MustNew(core.DefaultOptions())
	cfgs, pstats := eng.Process(srcs, meta)
	subset := cfgs
	if len(subset) > 40 {
		subset = subset[:40]
	}
	lr, err := eng.LearnProcessed(subset, pstats)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.LinearScan = linear
	ceng := core.MustNew(opts)
	b.ReportMetric(float64(len(cfgs)), "configs")
	b.ReportMetric(float64(lr.Set.Len()), "contracts")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ceng.CheckProcessed(lr.Set, cfgs, pstats); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckLinear_WANWide(b *testing.B)   { benchmarkCheckEngine(b, "W4", true) }
func BenchmarkCheckCompiled_WANWide(b *testing.B) { benchmarkCheckEngine(b, "W4", false) }
func BenchmarkCheckLinear_Edge(b *testing.B)      { benchmarkCheckEngine(b, "E2", true) }
func BenchmarkCheckCompiled_Edge(b *testing.B)    { benchmarkCheckEngine(b, "E2", false) }
